package simnet

import (
	"fmt"

	"repro/internal/flight"
	"repro/internal/latency"
	"repro/internal/sim"
	"repro/internal/spc"
)

// RunMultirate executes the Multirate pairwise benchmark on the model
// (Patinyasakdikul et al. [6]): cfg.Pairs communication pairs between two
// nodes; each pair performs cfg.Iters iterations of a cfg.Window-message
// window (sender: window sends + wait-all; receiver: window receives +
// wait-all). Thread mode maps every sender to one process and every
// receiver to another; process mode gives each pair its own pair of
// processes (Fig. 2's binding modes).
//
// The returned rate is total messages over the virtual makespan — the
// paper's "message rate" Y axis.
func RunMultirate(cfg Config) Result {
	cfg = cfg.withDefaults()
	if cfg.Pairs <= 0 {
		panic("simnet: Pairs must be positive")
	}
	if cfg.ProcessMode {
		return runMultirateProcesses(cfg)
	}
	return runMultirateThreads(cfg)
}

// threadSkew staggers simulated thread start times the way serialized
// thread creation does on a real node.
func threadSkew(i int) int64 { return int64(i) * 2000 }

// runMultirateThreads: one sender proc (node 0) and one receiver proc
// (node 1); cfg.Pairs threads on each.
func runMultirateThreads(cfg Config) Result {
	env := sim.NewEnv()
	sendWire := sim.NewWire(cfg.Machine.LinkGbps, cfg.Machine.MaxInjectionRate)
	sender := newSimProc(env, cfg, sendWire, cfg.NumInstances)
	recvWire := sim.NewWire(cfg.Machine.LinkGbps, cfg.Machine.MaxInjectionRate)
	receiver := newSimProc(env, cfg, recvWire, cfg.NumInstances)
	// Rank stamping and (optionally) the virtual-time flight recorder must
	// precede communicator and thread creation, which bind their rings.
	// RankBase shifts the reported world ranks so several virtual runs
	// compose into one N-rank cluster (see Config.RankBase).
	sender.enableFlight(cfg.RankBase)
	receiver.enableFlight(cfg.RankBase + 1)

	// Communicators: one shared, or one per pair (Fig. 3c). Both procs
	// register every communicator under the same id.
	nComms := 1
	if cfg.CommPerPair {
		nComms = cfg.Pairs
	}
	sendComms := make([]*simComm, nComms)
	recvComms := make([]*simComm, nComms)
	for i := 0; i < nComms; i++ {
		id := uint32(i + 1)
		sendComms[i] = sender.addComm(id, 2)
		recvComms[i] = receiver.addComm(id, 2)
	}
	commOf := func(pair int) int {
		if cfg.CommPerPair {
			return pair
		}
		return 0
	}

	sender.nWork = cfg.Pairs
	receiver.nWork = cfg.Pairs
	sender.spawnOffload(env, "offload-send")
	receiver.spawnOffload(env, "offload-recv")
	var dumps []flight.Dump
	sender.spawnWatchdog(env, "watchdog-send", &dumps)
	receiver.spawnWatchdog(env, "watchdog-recv", &dumps)
	series := make([]flight.RankSeries, 2)
	sender.spawnClusterSampler(env, "cluster-send", &series[0])
	receiver.spawnClusterSampler(env, "cluster-recv", &series[1])

	for pair := 0; pair < cfg.Pairs; pair++ {
		pair := pair
		tag := int32(pair)
		st := newSimThread(sender)
		// Threads start staggered by pthread_create-style skew; a
		// simultaneous start would synchronize posting bursts in a way
		// real runs never exhibit.
		env.Go(fmt.Sprintf("send-%d", pair), threadSkew(2*pair), func(sp *sim.Proc) {
			st.clk.start(sp)
			c := sendComms[commOf(pair)]
			for it := 0; it < cfg.Iters; it++ {
				for w := 0; w < cfg.Window; w++ {
					st.send(sp, c, receiver, 0, 1, tag)
				}
				st.waitFor(sp, func() bool { return st.pendingSends == 0 })
			}
			st.clk.stop(sp)
			sender.finished++
		})
		rt := newSimThread(receiver)
		env.Go(fmt.Sprintf("recv-%d", pair), threadSkew(2*pair+1), func(sp *sim.Proc) {
			rt.clk.start(sp)
			c := recvComms[commOf(pair)]
			target := int64(0)
			for it := 0; it < cfg.Iters; it++ {
				for w := 0; w < cfg.Window; w++ {
					rt.postRecv(sp, c, 0, tag)
				}
				if cfg.StallRecv > 0 && pair == 0 && it == cfg.StallAfterIter {
					// Injected fault: the receiver leaves its freshly posted
					// window unserviced, freezing its completion counters
					// while the queues stay non-empty — exactly the signature
					// the no-progress detector must catch.
					rt.stallFor(sp, cfg.StallRecv)
				}
				target += int64(cfg.Window)
				rt.waitFor(sp, func() bool { return rt.recvsDone >= target })
			}
			rt.clk.stop(sp)
			receiver.finished++
		})
	}
	makespan := env.Run()
	total := int64(cfg.Pairs) * int64(cfg.Window) * int64(cfg.Iters)
	res := newResult(total, makespan, receiver.spcs, sender.spcs)
	res.Breakdown = []RankBreakdown{sender.breakdown(0), receiver.breakdown(1)}
	res.Dumps = dumps
	if cfg.FlightCapacity > 0 {
		res.Flight = []flight.RankRecord{sender.flightRecord(), receiver.flightRecord()}
	}
	if cfg.FlightCapacity > 0 || cfg.Watchdog != nil {
		now := int64(makespan)
		res.Queues = []flight.QueueSnapshot{sender.queueSnapshot(now), receiver.queueSnapshot(now)}
	}
	if cfg.ClusterInterval > 0 {
		res.Series = series
	}
	if cfg.Latency {
		res.Latency = []latency.RankDump{sender.latencyDump(), receiver.latencyDump()}
	}
	return res
}

// runMultirateProcesses: each pair is an independent process pair with
// private instances and matching state; the node wire is shared, as all
// sender processes inject through the same NIC.
func runMultirateProcesses(cfg Config) Result {
	env := sim.NewEnv()
	sendWire := sim.NewWire(cfg.Machine.LinkGbps, cfg.Machine.MaxInjectionRate)
	recvWire := sim.NewWire(cfg.Machine.LinkGbps, cfg.Machine.MaxInjectionRate)

	pcfg := cfg
	pcfg.NumInstances = 1       // one process, one thread, one context
	pcfg.ProgressThread = false // a single-threaded process progresses itself
	pcfg.Latency = false        // attribution is mirrored in thread mode only

	recvSPCs := spc.NewSet()
	sendSPCs := spc.NewSet()
	var senders, receivers []*simProc
	for pair := 0; pair < cfg.Pairs; pair++ {
		pair := pair
		sender := newSimProc(env, pcfg, sendWire, 1)
		sender.spcs = sendSPCs // aggregate across sender processes
		receiver := newSimProc(env, pcfg, recvWire, 1)
		receiver.spcs = recvSPCs // aggregate across receiver processes
		id := uint32(pair + 1)
		sc := sender.addComm(id, 2)
		rc := receiver.addComm(id, 2)

		st := newSimThread(sender)
		env.Go(fmt.Sprintf("psend-%d", pair), threadSkew(2*pair), func(sp *sim.Proc) {
			st.clk.start(sp)
			for it := 0; it < cfg.Iters; it++ {
				for w := 0; w < cfg.Window; w++ {
					st.send(sp, sc, receiver, 0, 1, 0)
				}
				st.waitFor(sp, func() bool { return st.pendingSends == 0 })
			}
			st.clk.stop(sp)
		})
		rt := newSimThread(receiver)
		env.Go(fmt.Sprintf("precv-%d", pair), threadSkew(2*pair+1), func(sp *sim.Proc) {
			rt.clk.start(sp)
			target := int64(0)
			for it := 0; it < cfg.Iters; it++ {
				for w := 0; w < cfg.Window; w++ {
					rt.postRecv(sp, rc, 0, 0)
				}
				target += int64(cfg.Window)
				rt.waitFor(sp, func() bool { return rt.recvsDone >= target })
			}
			rt.clk.stop(sp)
		})
		senders = append(senders, sender)
		receivers = append(receivers, receiver)
	}
	makespan := env.Run()
	total := int64(cfg.Pairs) * int64(cfg.Window) * int64(cfg.Iters)
	res := newResult(total, makespan, recvSPCs, sendSPCs)
	sparts := make([]RankBreakdown, len(senders))
	rparts := make([]RankBreakdown, len(receivers))
	for i := range senders {
		sparts[i] = senders[i].breakdown(0)
		rparts[i] = receivers[i].breakdown(1)
	}
	res.Breakdown = []RankBreakdown{mergeBreakdowns(0, sparts), mergeBreakdowns(1, rparts)}
	return res
}
