package simnet

import (
	"sort"

	"repro/internal/prof"
	"repro/internal/sim"
)

// vClock is the virtual-time twin of prof.ThreadClock: it decomposes one
// simulated thread's virtual wall time into the same exclusive phase
// categories, with the same nested-section semantics (beginning a phase
// suspends the enclosing one). Because the discrete-event engine runs one
// process at a time, plain fields suffice — and because the clock reads
// sim.Proc virtual time, the resulting breakdown is byte-reproducible.
//
// A clock that was never started ignores every call, so the RMA-MT and
// Multirate threads share one simThread type whether or not the caller asked
// for a breakdown.
type vClock struct {
	running  bool
	startNs  int64
	wallNs   int64
	totals   prof.PhaseTotals
	cur      prof.Phase
	curSince int64
	stack    [8]prof.Phase
	depth    int
}

// start begins accounting at the thread's current virtual instant, in the
// app phase.
func (c *vClock) start(sp *sim.Proc) {
	c.running = true
	c.startNs = sp.Now()
	c.curSince = c.startNs
	c.cur = prof.PhaseApp
}

// begin flushes the current phase and enters ph.
func (c *vClock) begin(sp *sim.Proc, ph prof.Phase) {
	if !c.running || c.depth >= len(c.stack) {
		return
	}
	now := sp.Now()
	c.totals[c.cur] += now - c.curSince
	c.curSince = now
	c.stack[c.depth] = c.cur
	c.depth++
	c.cur = ph
}

// end flushes the current phase and resumes the enclosing one.
func (c *vClock) end(sp *sim.Proc) {
	if !c.running || c.depth == 0 {
		return
	}
	now := sp.Now()
	c.totals[c.cur] += now - c.curSince
	c.curSince = now
	c.depth--
	c.cur = c.stack[c.depth]
}

// stop flushes the open phase and freezes the wall time.
func (c *vClock) stop(sp *sim.Proc) {
	if !c.running {
		return
	}
	now := sp.Now()
	c.totals[c.cur] += now - c.curSince
	c.wallNs = now - c.startNs
	c.running = false
}

// RankBreakdown is one simulated rank's deterministic time breakdown: the
// summed virtual wall time of its threads, the exclusive phase totals, and
// every lock's contention statistics — the virtual-time feedstock of
// prof.ReportFromTotals.
type RankBreakdown struct {
	Rank   int
	WallNs int64
	Phases prof.PhaseTotals
	Sites  []prof.SiteSnapshot
}

// Report converts the breakdown into the profiler's report form.
func (b RankBreakdown) Report(design string, threads int) prof.Report {
	return prof.ReportFromTotals(b.Rank, design, threads, b.WallNs, b.Phases, b.Sites)
}

// siteSnapshots renders every lock of the proc as a profiler site, in the
// same naming scheme the real runtime binds (prof package docs). sim.Lock
// does not track try-failures, max wait, or hold time; those fields stay
// zero.
func (p *simProc) siteSnapshots() []prof.SiteSnapshot {
	var out []prof.SiteSnapshot
	add := func(name string, cri int, comm uint32, l *sim.Lock) {
		if l == nil {
			return
		}
		out = append(out, prof.SiteSnapshot{
			Name: name, CRI: cri, Comm: comm,
			Acquisitions: l.Acquisitions(),
			Contended:    l.Contended(),
			WaitNs:       int64(l.WaitTime()),
		})
	}
	add("core.biglock", -1, 0, p.bigLock)
	add("progress.serial", -1, 0, p.progLock)
	for _, in := range p.instances {
		add("cri.instance", in.index, 0, in.lock)
	}
	ids := make([]uint32, 0, len(p.comms))
	for id := range p.comms {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		add("match.comm", -1, id, p.comms[id].lock)
	}
	return out
}

// breakdown aggregates the proc's thread clocks and lock sites into one
// rank's breakdown.
func (p *simProc) breakdown(rank int) RankBreakdown {
	b := RankBreakdown{Rank: rank, Sites: p.siteSnapshots()}
	for _, t := range p.threads {
		b.WallNs += t.clk.wallNs
		b.Phases.Merge(t.clk.totals)
	}
	return b
}

// mergeBreakdowns folds several procs' breakdowns into one rank entry —
// process mode aggregates all sender (or receiver) processes the way the
// thread-mode run aggregates threads.
func mergeBreakdowns(rank int, parts []RankBreakdown) RankBreakdown {
	b := RankBreakdown{Rank: rank}
	for _, part := range parts {
		b.WallNs += part.WallNs
		b.Phases.Merge(part.Phases)
		b.Sites = append(b.Sites, part.Sites...)
	}
	return b
}
