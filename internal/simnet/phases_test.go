package simnet

import (
	"encoding/json"
	"testing"

	"repro/internal/cri"
	"repro/internal/hw"
	"repro/internal/prof"
	"repro/internal/progress"
	"repro/internal/spc"
)

// sumPhases is the exclusive-phase total for one rank's breakdown.
func sumPhases(b RankBreakdown) int64 {
	var s int64
	for _, v := range b.Phases {
		s += v
	}
	return s
}

// TestBreakdownPhasesSumToWall: in virtual time the decomposition is exact —
// every simulated nanosecond of a thread's life lands in exactly one phase,
// so Σ(phases) equals the summed wall time, not merely approximates it.
func TestBreakdownPhasesSumToWall(t *testing.T) {
	for _, pm := range []progress.Mode{progress.Serial, progress.Concurrent} {
		cfg := baseCfg(8)
		cfg.Progress = pm
		res := RunMultirate(cfg)
		if len(res.Breakdown) != 2 {
			t.Fatalf("progress=%v: %d breakdowns, want 2", pm, len(res.Breakdown))
		}
		for _, b := range res.Breakdown {
			if b.WallNs <= 0 {
				t.Fatalf("progress=%v rank %d: wall %d, want > 0", pm, b.Rank, b.WallNs)
			}
			if got := sumPhases(b); got != b.WallNs {
				t.Errorf("progress=%v rank %d: phases sum %d != wall %d", pm, b.Rank, got, b.WallNs)
			}
		}
	}
}

func TestBreakdownProcessModePhasesSumToWall(t *testing.T) {
	cfg := baseCfg(4)
	cfg.ProcessMode = true
	res := RunMultirate(cfg)
	for _, b := range res.Breakdown {
		if got := sumPhases(b); got != b.WallNs || b.WallNs <= 0 {
			t.Errorf("rank %d: phases sum %d, wall %d", b.Rank, got, b.WallNs)
		}
	}
}

// aggLockShare is lock-wait time over wall time summed across ranks.
func aggLockShare(res Result) float64 {
	var lock, wall int64
	for _, b := range res.Breakdown {
		lock += b.Phases[prof.PhaseLockWait]
		wall += b.WallNs
	}
	return float64(lock) / float64(wall)
}

// TestSerialProgressAttributesMoreLockWait is the profiler's acceptance
// property: with everything else fixed at the full design (dedicated CRIs,
// communicator per pair), serial progress funnels completion polling through
// blocking lock acquisitions and must attribute a strictly larger lock-wait
// share than concurrent progress at 8 threads, on the same seed. The
// concurrent engine turns those blocking waits into try-lock steal losses,
// which the ProgressStealLosses counter makes visible instead.
func TestSerialProgressAttributesMoreLockWait(t *testing.T) {
	run := func(pm progress.Mode) Result {
		cfg := baseCfg(8)
		cfg.NumInstances = 8
		cfg.Assignment = cri.Dedicated
		cfg.CommPerPair = true
		cfg.Progress = pm
		return RunMultirate(cfg)
	}
	serial, conc := run(progress.Serial), run(progress.Concurrent)
	ss, cs := aggLockShare(serial), aggLockShare(conc)
	if !(ss > cs) {
		t.Fatalf("serial lock-wait share %.4f not strictly above concurrent %.4f", ss, cs)
	}
	if serial.SPCs[spc.ProgressStealLosses] != 0 {
		t.Errorf("serial progress recorded %d steal losses, want 0", serial.SPCs[spc.ProgressStealLosses])
	}

	// The single-CRI variant shows the same ordering on the sender rank,
	// where the serial progress winner blocks senders on the shared
	// instance lock.
	runOne := func(pm progress.Mode) Result {
		cfg := baseCfg(8)
		cfg.Progress = pm
		return RunMultirate(cfg)
	}
	s1, c1 := runOne(progress.Serial), runOne(progress.Concurrent)
	sShare := float64(s1.Breakdown[0].Phases[prof.PhaseLockWait]) / float64(s1.Breakdown[0].WallNs)
	cShare := float64(c1.Breakdown[0].Phases[prof.PhaseLockWait]) / float64(c1.Breakdown[0].WallNs)
	if !(sShare > cShare) {
		t.Fatalf("single-CRI sender: serial share %.4f not above concurrent %.4f", sShare, cShare)
	}
	if c1.SPCs[spc.ProgressStealLosses] == 0 {
		t.Error("concurrent progress with contention recorded no steal losses")
	}
}

// TestBreakdownDeterministic: the breakdown is part of the reproducible
// surface — identical configs must produce byte-identical reports.
func TestBreakdownDeterministic(t *testing.T) {
	run := func() []byte {
		cfg := baseCfg(6)
		cfg.Progress = progress.Concurrent
		cfg.NumInstances = 4
		res := RunMultirate(cfg)
		reports := make([]prof.Report, len(res.Breakdown))
		for i, b := range res.Breakdown {
			reports[i] = b.Report("test", 6)
		}
		b, err := json.Marshal(reports)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Fatal("two identical runs produced different breakdowns")
	}
}

// TestBreakdownSitesNamed: the virtual model binds the same site names the
// real runtime does, so reports are comparable across engines.
func TestBreakdownSitesNamed(t *testing.T) {
	cfg := baseCfg(4)
	cfg.NumInstances = 2
	res := RunMultirate(cfg)
	want := map[string]bool{"cri.instance": false, "progress.serial": false, "match.comm": false}
	for _, b := range res.Breakdown {
		for _, s := range b.Sites {
			if _, ok := want[s.Name]; ok {
				want[s.Name] = true
			}
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("site %q missing from breakdown", name)
		}
	}
}

// TestRMAMTBreakdown: the one-sided benchmark carries a breakdown too.
// (The Haswell model, not hw.Fast(): Fast's RMA costs round to zero virtual
// nanoseconds, which would make a zero wall time correct but vacuous.)
func TestRMAMTBreakdown(t *testing.T) {
	res := RunRMAMT(RMAMTConfig{
		Machine: hw.AlembertHaswell(), Threads: 4, MsgSize: 8,
		PutsPerThread: 50, Rounds: 2,
		Assignment: cri.Dedicated, Progress: progress.Concurrent,
	})
	if len(res.Breakdown) != 1 {
		t.Fatalf("%d breakdowns, want 1", len(res.Breakdown))
	}
	b := res.Breakdown[0]
	if got := sumPhases(b); got != b.WallNs || b.WallNs <= 0 {
		t.Fatalf("phases sum %d, wall %d", got, b.WallNs)
	}
	if b.Phases[prof.PhaseWire] == 0 {
		t.Error("RMA put burst charged no wire time")
	}
}
