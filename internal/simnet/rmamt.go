package simnet

import (
	"fmt"
	"time"

	"repro/internal/cri"
	"repro/internal/hw"
	"repro/internal/prof"
	"repro/internal/progress"
	"repro/internal/sim"
	"repro/internal/spc"
)

// RMAMTConfig describes one RMA-MT run (Dosanjh et al. [7]): Threads
// threads on the origin process, each performing PutsPerThread MPI_Put
// operations of MsgSize bytes followed by an MPI_Win_flush, repeated Rounds
// times. InstanceMode selects the resource design under test.
type RMAMTConfig struct {
	// Machine supplies cost model, contexts, and link rate.
	Machine hw.Machine
	// Threads is the number of origin-side threads (1..32 Haswell,
	// 1..64 KNL).
	Threads int
	// MsgSize is the put payload in bytes.
	MsgSize int
	// PutsPerThread per flush round (the benchmark uses 1000).
	PutsPerThread int
	// Rounds of put-burst + flush.
	Rounds int
	// NumInstances: 1 reproduces the "single" (red) curves; the machine
	// default (one per core, 32/72) with Assignment selects
	// dedicated/round-robin.
	NumInstances int
	// Assignment is the thread-to-instance strategy.
	Assignment cri.Assignment
	// Progress selects serial or concurrent progress for completion
	// reaping during flush.
	Progress progress.Mode
	// LockPenalty overrides the contended handoff cost (0 = default).
	LockPenalty time.Duration
}

func (c RMAMTConfig) withDefaults() RMAMTConfig {
	if c.PutsPerThread <= 0 {
		c.PutsPerThread = 1000
	}
	if c.Rounds <= 0 {
		c.Rounds = 4
	}
	if c.NumInstances <= 0 {
		c.NumInstances = c.Machine.DefaultContexts
	}
	if max := c.Machine.MaxContexts; max > 0 && c.NumInstances > max {
		c.NumInstances = max
	}
	return c
}

// RunRMAMT executes the RMA-MT put+flush workload on the model and returns
// the achieved put rate. One-sided operations have no matching stage: each
// put charges initiator CPU under the instance lock and reserves wire time;
// flush drives the progress engine until the thread's outstanding
// completions are reaped.
func RunRMAMT(rc RMAMTConfig) Result {
	rc = rc.withDefaults()
	cfg := Config{
		Machine:      rc.Machine,
		NumInstances: rc.NumInstances,
		Assignment:   rc.Assignment,
		Progress:     rc.Progress,
		MsgSize:      rc.MsgSize,
	}.withDefaults()
	if rc.LockPenalty > 0 {
		cfg.LockPenalty = rc.LockPenalty
	}

	env := sim.NewEnv()
	wire := sim.NewWire(rc.Machine.LinkGbps, rc.Machine.MaxInjectionRate)
	origin := newSimProc(env, cfg, wire, cfg.NumInstances)

	costs := origin.costs
	for g := 0; g < rc.Threads; g++ {
		t := newSimThread(origin)
		env.Go(fmt.Sprintf("rma-%d", g), threadSkew(g), func(sp *sim.Proc) {
			t.clk.start(sp)
			for round := 0; round < rc.Rounds; round++ {
				for k := 0; k < rc.PutsPerThread; k++ {
					inst := origin.instanceFor(&t.ts)
					t.clk.begin(sp, prof.PhaseSend)
					t.clk.begin(sp, prof.PhaseLockWait)
					inst.lock.Acquire(sp)
					t.clk.end(sp)
					sp.Advance(costs.RMAPut)
					t.clk.begin(sp, prof.PhaseWire)
					origin.wire.Reserve(sp, 28+rc.MsgSize)
					t.clk.end(sp)
					inst.cq = append(inst.cq, cqe{pending: &t.pendingSends})
					inst.lock.Release(sp)
					t.clk.end(sp)
					t.noteUsed(inst)
					t.pendingSends++
					origin.spcs.Inc(spc.PutsIssued)
				}
				t.flush(sp)
			}
			t.clk.stop(sp)
		})
	}
	makespan := env.Run()
	total := int64(rc.Threads) * int64(rc.PutsPerThread) * int64(rc.Rounds)
	res := newResult(total, makespan, origin.spcs)
	res.Breakdown = []RankBreakdown{origin.breakdown(0)}
	return res
}

// noteUsed records an instance the thread issued one-sided operations on.
func (t *simThread) noteUsed(inst *simInstance) {
	for _, u := range t.used {
		if u == inst {
			return
		}
	}
	t.used = append(t.used, inst)
}

// flush is MPI_Win_flush in the model: reap this thread's outstanding
// completions by polling the contexts it issued on. Unlike the two-sided
// path, one-sided completion reaping is per-device-context (the osc/rdma +
// ugni design), not funneled through the global progress engine, which is
// why Figures 6-7 show little difference between serial and concurrent
// progress. In Serial mode each polling round still makes one (cheap)
// serialized opal_progress check.
func (t *simThread) flush(sp *sim.Proc) {
	p := t.proc
	p.spcs.Inc(spc.FlushCalls)
	backoff := retryCost
	for t.pendingSends > 0 {
		n := 0
		for _, inst := range t.used {
			if inst.lock.TryAcquire(sp) {
				t.clk.begin(sp, prof.PhaseProgressOwn)
				sp.Advance(p.costs.RMAFlushPerInstance)
				n += t.poll(sp, inst, 64)
				t.clk.end(sp)
				inst.lock.Release(sp)
			} else {
				p.spcs.Inc(spc.ProgressTryLockFail)
			}
		}
		if p.cfg.Progress == progress.Serial {
			// The serialized opal_progress tick every flush round.
			if p.progLock.TryAcquire(sp) {
				sp.Advance(p.costs.CQPollEmpty)
				p.progLock.Release(sp)
			}
		}
		if n == 0 {
			sp.Advance(backoff)
			sp.Yield()
			if backoff < maxBackoff {
				backoff *= 2
			}
		} else {
			backoff = retryCost
		}
	}
}
