package simnet

import (
	"testing"

	"repro/internal/cri"
	"repro/internal/hw"
	"repro/internal/progress"
)

// Shape tests: each asserts one qualitative claim from the paper's
// evaluation at its operating point, so a model regression that silently
// breaks a reproduced result fails the suite.

func fig4Cfg(pairs, instances int, prog progress.Mode) Config {
	return Config{
		Machine: hw.AlembertHaswell(), Pairs: pairs, Window: 128, Iters: 6,
		NumInstances: instances, Assignment: cri.Dedicated, Progress: prog,
		AllowOvertaking: true, AnyTagRecv: true,
	}
}

// TestFig4aSingleInstanceFlattens: "the message rate flattens out ... and
// remains unchanged with an increasing number of threads" (Section IV-D).
func TestFig4aSingleInstanceFlattens(t *testing.T) {
	r10 := RunMultirate(fig4Cfg(10, 1, progress.Serial))
	r20 := RunMultirate(fig4Cfg(20, 1, progress.Serial))
	ratio := r20.Rate / r10.Rate
	if ratio < 0.6 || ratio > 1.67 {
		t.Fatalf("single-instance overtaking rate did not flatten: %0.f vs %0.f", r10.Rate, r20.Rate)
	}
}

// TestFig4aInstancesStillHelpSenderSide: multiple instances lift the
// overtaking configuration well above the single instance.
func TestFig4aInstancesStillHelpSenderSide(t *testing.T) {
	single := RunMultirate(fig4Cfg(20, 1, progress.Serial))
	multi := RunMultirate(fig4Cfg(20, 20, progress.Serial))
	if multi.Rate < 2*single.Rate {
		t.Fatalf("instances did not help under overtaking: %.0f vs %.0f", multi.Rate, single.Rate)
	}
}

// TestFig6SerialConcurrentEquivalentForRMA: "there appears to be little
// benefit from concurrent progress in this configuration" (Section IV-F).
func TestFig6SerialConcurrentEquivalentForRMA(t *testing.T) {
	base := RMAMTConfig{
		Machine: hw.TrinititeHaswell(), Threads: 16, MsgSize: 128,
		PutsPerThread: 200, Rounds: 2, Assignment: cri.Dedicated,
	}
	serial := RunRMAMT(base)
	base.Progress = progress.Concurrent
	conc := RunRMAMT(base)
	ratio := conc.Rate / serial.Rate
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("serial (%.0f) vs concurrent (%.0f) RMA diverged beyond 10%%", serial.Rate, conc.Rate)
	}
}

// TestFig7KNLSlowerPerThread: a single KNL thread achieves a fraction of a
// Haswell thread's put rate (slower cores), while the 64-thread aggregate
// still reaches the same order of magnitude.
func TestFig7KNLSlowerPerThread(t *testing.T) {
	has := RunRMAMT(RMAMTConfig{
		Machine: hw.TrinititeHaswell(), Threads: 1, MsgSize: 8,
		PutsPerThread: 200, Rounds: 2, Assignment: cri.Dedicated,
	})
	knl := RunRMAMT(RMAMTConfig{
		Machine: hw.TrinititeKNL(), Threads: 1, MsgSize: 8,
		PutsPerThread: 200, Rounds: 2, Assignment: cri.Dedicated,
	})
	if knl.Rate >= has.Rate*0.75 {
		t.Fatalf("KNL single thread (%.0f) not clearly slower than Haswell (%.0f)", knl.Rate, has.Rate)
	}
	knl64 := RunRMAMT(RMAMTConfig{
		Machine: hw.TrinititeKNL(), Threads: 64, MsgSize: 8,
		PutsPerThread: 100, Rounds: 1, Assignment: cri.Dedicated,
	})
	if knl64.Rate < 10e6 {
		t.Fatalf("KNL 64-thread aggregate only %.0f puts/s", knl64.Rate)
	}
}

// TestOffloadModeCompletesAllTraffic: the sim offload thread terminates and
// delivers everything (regression test for the offload shutdown condition).
func TestOffloadModeCompletesAllTraffic(t *testing.T) {
	cfg := Config{
		Machine: hw.AlembertHaswell(), Pairs: 6, Window: 32, Iters: 3,
		NumInstances: 6, Assignment: cri.Dedicated, ProgressThread: true,
	}
	res := RunMultirate(cfg)
	if res.Messages != 6*32*3 {
		t.Fatalf("Messages = %d", res.Messages)
	}
	if res.Rate <= 0 {
		t.Fatalf("Rate = %f", res.Rate)
	}
}

// TestHashMatchingLiftsSerialCeiling: the matching extension's headline in
// the model (EXPERIMENTS.md "Extension — hash-based matching").
func TestHashMatchingLiftsSerialCeiling(t *testing.T) {
	base := Config{
		Machine: hw.AlembertHaswell(), Pairs: 20, Window: 128, Iters: 6,
		NumInstances: 20, Assignment: cri.Dedicated, Progress: progress.Serial,
	}
	list := RunMultirate(base)
	hashCfg := base
	hashCfg.HashMatching = true
	hash := RunMultirate(hashCfg)
	if hash.Rate < list.Rate*1.3 {
		t.Fatalf("hash matching (%.0f) did not lift the serial ceiling (list %.0f)", hash.Rate, list.Rate)
	}
}
