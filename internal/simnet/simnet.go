// Package simnet models the paper's message path on the deterministic
// virtual-time engine (internal/sim): Communication Resource Instances with
// per-instance locks, the serial and concurrent progress engines
// (Algorithm 2), per-communicator matching via the shared match.Engine, the
// NIC wire cap, and both benchmark workloads (Multirate pairwise and
// RMA-MT). All Figures 3-7 and Table II are regenerated from this model.
//
// The model and the real runtime (internal/core) share the matching engine,
// the cost model, and the SPC counters; they differ only in how time and
// mutual exclusion are realized (virtual vs. wall-clock).
package simnet

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/cri"
	"repro/internal/fabric"
	"repro/internal/flight"
	"repro/internal/hw"
	"repro/internal/latency"
	"repro/internal/match"
	"repro/internal/prof"
	"repro/internal/progress"
	"repro/internal/sim"
	"repro/internal/spc"
)

// DefaultLockPenalty is the base cost of one contended lock handoff at
// Haswell speed. The effective handoff cost grows with the number of
// waiters (sim.Lock), reaching the microseconds a futex wakeup costs under
// a heavy convoy — the regime a single shared instance lives in.
const DefaultLockPenalty = 120 * time.Nanosecond

// Config describes one simulated experiment configuration.
type Config struct {
	// Machine supplies the cost model, core counts, and link rate.
	Machine hw.Machine
	// Pairs is the number of communication pairs (Multirate) — threads or
	// processes per side depending on ProcessMode.
	Pairs int
	// Window is the number of outstanding messages per iteration (the
	// paper uses 128).
	Window int
	// Iters is the number of window iterations per pair.
	Iters int
	// MsgSize is the payload size in bytes (0 = envelope only).
	MsgSize int
	// NumInstances is the number of CRIs per process (thread mode).
	NumInstances int
	// Assignment is the thread-to-instance strategy.
	Assignment cri.Assignment
	// Progress selects the serial or concurrent progress engine.
	Progress progress.Mode
	// CommPerPair gives every pair a private communicator (Fig. 3c).
	CommPerPair bool
	// AllowOvertaking asserts the overtaking info key (Fig. 4).
	AllowOvertaking bool
	// AnyTagRecv posts receives with the wildcard tag (Fig. 4).
	AnyTagRecv bool
	// ProcessMode maps each pair to its own process with private
	// resources (the process-per-core baseline of Fig. 5).
	ProcessMode bool
	// BigLock wraps every runtime entry (send, progress, match) in one
	// process-wide lock — the worst-case comparator design.
	BigLock bool
	// HashMatching swaps the OB1-style list matcher for the hash-based
	// engine (O(1) exact matching).
	HashMatching bool
	// MatchShards, when positive, mirrors the runtime's sharded matching
	// engine (match.Sharded): matching state is hash-partitioned by
	// (source, tag) and each partition gets its own virtual-time lock, so
	// exact-coordinate traffic on distinct shards stops contending. Takes
	// precedence over HashMatching. Deterministic: the partition function is
	// the engine's own ShardOf.
	MatchShards int
	// LockFreeCQ mirrors the lock-free MPSC completion ring (ringbuf.MPSC):
	// senders enqueue completions with an atomic slot claim instead of the
	// instance lock, so producers stop contending with each other and with
	// the progress engine. Extraction keeps the instance lock — the ring is
	// single-consumer by contract.
	LockFreeCQ bool
	// ProgressThread dedicates one runtime thread per process to all
	// completion extraction (the software-offload design of Vaidyanathan
	// et al. [20]); application threads only wait.
	ProgressThread bool
	// LockPenalty overrides the contended-lock handoff cost
	// (0 = DefaultLockPenalty).
	LockPenalty time.Duration
	// QueueDepth bounds each instance's inbound queue (0 = 4096); senders
	// stall when the remote queue is full (hardware back-pressure).
	QueueDepth int
	// Credits bounds a sender thread's unmatched eager messages to its
	// peer (0 = 4096), modeling the per-peer flow control every eager BTL
	// implements. Without it a sender could run arbitrarily far ahead of
	// the receiver's matching, growing the unexpected queue without bound.
	Credits int
	// AckBatch is the credit-return granularity (0 = 64): receivers
	// acknowledge consumed fragments in batches (piggybacked ACKs).
	AckBatch int
	// SleepPenalty is the futex-wake cost paid per lock handoff once a
	// lock is convoyed (>= 4 sleeping waiters); 0 = 2us at Haswell speed.
	// This is what makes a single instance shared by 20 pounding threads
	// an order of magnitude slower than dedicated instances.
	SleepPenalty time.Duration
	// SendJitter is the span of the deterministic per-message variation in
	// the time between sequence-number assignment and hardware injection
	// (0 = 600ns at Haswell speed). Real send paths vary here with cache
	// and allocator state; the variation is what lets concurrently sending
	// threads inject out of sequence order — the paper's out-of-sequence
	// storm. Deterministic per-thread LCG keeps runs reproducible.
	SendJitter time.Duration
	// FaultDrop mirrors fabric.FaultConfig.Drop on virtual time: a dropped
	// packet costs its sender one backed-off retransmission timeout per
	// attempt before the delivery that finally survives.
	FaultDrop float64
	// FaultDup is the per-packet duplication probability; the duplicate
	// copy is discarded by the matching layer's dedup.
	FaultDup float64
	// FaultDelay is the per-packet probability of a held-back (reordered)
	// delivery.
	FaultDelay float64
	// FaultDelayDur is the virtual hold time of a delayed packet
	// (0 = fabric.DefaultFaultDelay).
	FaultDelayDur time.Duration
	// FaultSeed seeds the deterministic per-thread fault RNGs (0 = 1).
	FaultSeed int64
	// Traced models the trace-context wire extension being on: every eager
	// packet carries TraceExtSize extra header bytes, mirroring the real
	// runtime's flag-gated framing on the virtual wire so the extension's
	// bandwidth cost is measurable deterministically.
	Traced bool
	// FlightCapacity attaches a virtual-time flight recorder with this
	// per-ring event capacity (0 = off). Recording advances no virtual
	// time, so a flight-enabled run reproduces the flight-off makespan
	// exactly. Thread mode only; process mode ignores it.
	FlightCapacity int
	// Latency attaches the critical-path attribution layer (internal/latency)
	// on virtual time: every message's lifecycle stages are stamped from the
	// deterministic schedule and folded into per-stage histograms plus the
	// tail-exemplar reservoir (Result.Latency). Observation only — no virtual
	// time is charged and no wire bytes are added (unlike Traced), so a
	// latency-enabled run reproduces the latency-off makespan exactly and the
	// dumps are byte-reproducible. Thread mode only; process mode ignores it.
	Latency bool
	// LatencyExemplars bounds the tail-exemplar reservoir
	// (0 = latency.DefaultExemplars). Latency mode only.
	LatencyExemplars int
	// Watchdog, when non-nil, runs the virtual-time stall watchdog with
	// this detector configuration on every proc; verdict dumps land in
	// Result.Dumps in deterministic order.
	Watchdog *flight.DetectorConfig
	// WatchdogInterval is the watchdog's virtual sampling period
	// (0 = DefaultSimWatchdogInterval).
	WatchdogInterval time.Duration
	// StallRecv injects a fault for watchdog acceptance tests: pair 0's
	// receiver goes quiet — no posting, no progress — for this much
	// virtual time (0 = no injection; thread mode only).
	StallRecv time.Duration
	// StallAfterIter is the window iteration whose posted receives the
	// injected stall follows (receives are posted, then the receiver
	// stalls before extracting completions).
	StallAfterIter int
	// ClusterInterval, when positive, samples every proc's watchdog-style
	// observation at this virtual period into Result.Series — the feed for
	// the cluster imbalance detector's simnet twin (cluster.DetectSeries).
	// Zero leaves sampling off and the run byte-identical to before the
	// cluster plane existed. Thread mode only.
	ClusterInterval time.Duration
	// RankBase offsets the world ranks this run's procs report in flight
	// and cluster series (sender RankBase, receiver RankBase+1), so several
	// virtual runs compose into one N-rank cluster series set.
	RankBase int
}

// faultsEnabled reports whether any fault probability is non-zero.
func (c Config) faultsEnabled() bool {
	return c.FaultDrop > 0 || c.FaultDup > 0 || c.FaultDelay > 0
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = 128
	}
	if c.Iters <= 0 {
		c.Iters = 8
	}
	if c.NumInstances <= 0 {
		c.NumInstances = 1
	}
	if max := c.Machine.MaxContexts; max > 0 && c.NumInstances > max {
		c.NumInstances = max
	}
	if c.LockPenalty <= 0 {
		c.LockPenalty = time.Duration(float64(DefaultLockPenalty) * c.Machine.SpeedFactor)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4096
	}
	if c.Credits <= 0 {
		c.Credits = 4096
	}
	if c.AckBatch <= 0 {
		c.AckBatch = 64
	}
	if c.AckBatch > c.Credits {
		c.AckBatch = c.Credits
	}
	if c.SendJitter <= 0 {
		c.SendJitter = time.Duration(600 * c.Machine.SpeedFactor * float64(time.Nanosecond))
	}
	if c.SleepPenalty <= 0 {
		c.SleepPenalty = time.Duration(2000 * c.Machine.SpeedFactor * float64(time.Nanosecond))
	}
	if c.FaultDelayDur <= 0 {
		c.FaultDelayDur = fabric.DefaultFaultDelay
	}
	if c.FaultSeed == 0 {
		c.FaultSeed = 1
	}
	return c
}

// simRTO and simRetryBudget mirror the real runtime's reliability defaults
// (core.DefaultRetransmitTimeout / DefaultRetryBudget) without importing it.
const (
	simRTO         = time.Millisecond
	simRetryBudget = 10
)

// newLock builds a virtual-time lock with the configuration's contention
// model applied.
func (c Config) newLock(env *sim.Env, name string) *sim.Lock {
	l := sim.NewLock(env, name, c.LockPenalty)
	l.SleepPenalty = c.SleepPenalty
	return l
}

// Result is the outcome of one simulated run.
type Result struct {
	// Messages is the total number of two-sided messages (or one-sided
	// operations) completed.
	Messages int64
	// Makespan is the virtual time from start to the last completion.
	Makespan time.Duration
	// Rate is Messages divided by Makespan, in operations per second.
	Rate float64
	// SPCs aggregates the software performance counters of every listed
	// side: the receive-side matching counters plus, when fault injection
	// is on, the send-side fault and retransmission counters.
	SPCs spc.Snapshot
	// Breakdown holds each rank's deterministic time breakdown (virtual
	// phase totals plus lock-site contention stats), in rank order —
	// sender first. Feed each entry's Report into prof.WriteBreakdown.
	Breakdown []RankBreakdown
	// Flight holds each rank's merged flight record when
	// Config.FlightCapacity is set, in rank order.
	Flight []flight.RankRecord
	// Queues holds each rank's final queue-introspection snapshot when the
	// recorder or watchdog is on, in rank order.
	Queues []flight.QueueSnapshot
	// Dumps holds the watchdog's verdict dumps in firing order — the same
	// bytes on every run of the same configuration.
	Dumps []flight.Dump
	// Series holds each rank's virtual-time observation series when
	// Config.ClusterInterval is set, in rank order — the deterministic
	// input to the cluster imbalance detector (cluster.DetectSeries).
	Series []flight.RankSeries
	// Latency holds each rank's critical-path attribution dump when
	// Config.Latency is set, in rank order — byte-reproducible across runs
	// of the same configuration.
	Latency []latency.RankDump
}

func newResult(messages int64, makespan time.Duration, sets ...*spc.Set) Result {
	r := Result{Messages: messages, Makespan: makespan}
	if makespan > 0 {
		r.Rate = float64(messages) / makespan.Seconds()
	}
	snaps := make([]spc.Snapshot, 0, len(sets))
	for _, s := range sets {
		if s != nil {
			snaps = append(snaps, s.Snapshot())
		}
	}
	r.SPCs = spc.Merge(snaps...)
	return r
}

// retryCost is the virtual time charged when a progress attempt yields no
// events and the caller immediately retries (spin-wait cost). Without it a
// polling loop would livelock at a fixed virtual instant.
const retryCost = 150 * time.Nanosecond

// maxBackoff caps the adaptive retry backoff in idle wait loops (a real
// thread would be descheduled at this point; the cap bounds the wake-up
// latency it pays).
const maxBackoff = 2 * time.Microsecond

// cqe is one completion-queue entry in the model.
type cqe struct {
	// pending, when non-nil, is decremented on extraction (send or
	// one-sided completion attributed to the issuing thread).
	pending *int64
	// pkt, when non-nil, is an inbound two-sided packet to match.
	pkt *fabric.Packet
}

// simInstance is one CRI in the model.
type simInstance struct {
	index int
	lock  *sim.Lock
	cq    []cqe // local completions (send/put), FIFO
	rxQ   []cqe // inbound packets, FIFO
}

func (in *simInstance) queued() int { return len(in.cq) + len(in.rxQ) }

// threadMeter routes match.Engine cost charges to whichever simulated
// thread currently holds the matching lock.
type threadMeter struct{ p *sim.Proc }

func (m *threadMeter) Charge(d time.Duration) {
	if m.p != nil {
		m.p.Advance(d)
	}
}

// simComm is one communicator's matching state in the model.
type simComm struct {
	id    uint32
	lock  *sim.Lock
	meter threadMeter
	// sharded is set (aliasing engine) under Config.MatchShards; matching
	// then synchronizes on shardLocks — one virtual lock per partition,
	// wildcards take all in ascending order — instead of lock.
	sharded    *match.Sharded
	shardLocks []*sim.Lock
	engine     match.Matcher
	seq        *match.SeqTracker
	anyTag     bool
	postedOut  int64 // diagnostic: total completions
}

// simProc is one simulated MPI process.
type simProc struct {
	// finished counts workload threads that completed; the offload
	// progress thread exits when all have.
	finished int
	nWork    int

	cfg       Config
	costs     hw.CostModel
	env       *sim.Env
	instances []*simInstance
	rr        uint64
	// freeList mirrors cri.Pool's free-list assignment deterministically:
	// senders pop an exclusively owned instance index and push it back
	// after injection; empty falls back to round-robin. The sim rotates
	// FIFO — under real concurrent churn the stack order is effectively
	// arbitrary, and the sim's serialized execution would otherwise pin
	// every send to one index, concentrating remote traffic artificially.
	freeList []int
	nThreads int
	threads  []*simThread
	comms    map[uint32]*simComm
	spcs     *spc.Set
	// connSeen mirrors the lazy-connect counters of the distributed
	// backends on virtual time: the first message to a peer proc counts a
	// conns_opened, the first from each further local instance to that
	// peer a conns_reused. Lookups cost zero virtual time, and the totals
	// are order-independent, so deterministic replay is preserved. The
	// real mutex guards the map, not the virtual clock.
	connMu   sync.Mutex
	connSeen map[connKey]bool
	// frank is the proc's world rank for flight/introspection labelling.
	frank int
	// flight mirrors the real runtime's flight recorder on virtual time;
	// flightSP holds the sim thread currently charging, whose clock the
	// recorder reads (the threadMeter pattern).
	flight   *flight.Recorder
	flightSP *sim.Proc
	// lat mirrors the real runtime's critical-path attribution recorder on
	// virtual time (Config.Latency; nil-safe). Observation only: recording
	// never advances the clock.
	lat      *latency.Recorder
	progLock *sim.Lock // serial progress global lock
	bigLock  *sim.Lock // BigLock design, nil unless enabled
	wire     *sim.Wire // owning node's wire (shared)
	// memSerial is the process-wide memory-management serializer (see
	// hw.CostModel.AllocSerialize): threads of one process share it,
	// separate processes each get their own.
	memSerial *sim.Wire
}

func newSimProc(env *sim.Env, cfg Config, wire *sim.Wire, instances int) *simProc {
	p := &simProc{
		cfg:      cfg,
		costs:    cfg.Machine.Scaled(),
		env:      env,
		comms:    make(map[uint32]*simComm),
		spcs:     spc.NewSet(),
		connSeen: make(map[connKey]bool),
		wire:     wire,
	}
	p.progLock = cfg.newLock(env, "progress")
	if cfg.BigLock {
		p.bigLock = cfg.newLock(env, "biglock")
	}
	if cfg.Latency {
		p.lat = latency.NewRecorder(cfg.LatencyExemplars)
	}
	if alloc := p.costs.AllocSerialize; alloc > 0 {
		p.memSerial = sim.NewWire(0, 1e9/float64(alloc.Nanoseconds()))
	}
	for i := 0; i < instances; i++ {
		p.instances = append(p.instances, &simInstance{
			index: i,
			lock:  cfg.newLock(env, "instance"),
		})
	}
	if cfg.Assignment == cri.FreeList {
		p.freeList = make([]int, instances)
		for i := range p.freeList {
			p.freeList[i] = i
		}
	}
	return p
}

// acquireSendInstance mirrors cri.Pool.AcquireSend: under FreeList, pop an
// exclusive instance (push back on release) and fall back to round-robin
// when drained, with the same SPC accounting; other assignments delegate to
// instanceFor with a no-op release.
// connKey identifies one lazy-connect edge: a peer proc, plus the local
// instance using it (inst == -1 marks the peer-level "any instance" entry).
type connKey struct {
	dst  *simProc
	inst int
}

// noteConn mirrors the distributed backends' lazy-connect accounting: the
// first message to a peer counts conns_opened, the first from each further
// local instance to that peer conns_reused. No virtual time is charged —
// establishment cost is a wall-clock property the model does not carry —
// and the totals are first-come order-independent, so the deterministic
// virtual-time results are unchanged.
func (p *simProc) noteConn(dst *simProc, inst int) {
	if dst == p {
		return
	}
	p.connMu.Lock()
	defer p.connMu.Unlock()
	peerKey := connKey{dst, -1}
	instKey := connKey{dst, inst}
	switch {
	case !p.connSeen[peerKey]:
		p.connSeen[peerKey] = true
		p.connSeen[instKey] = true
		p.spcs.Inc(spc.ConnsOpened)
	case !p.connSeen[instKey]:
		p.connSeen[instKey] = true
		p.spcs.Inc(spc.ConnsReused)
	}
}

func (p *simProc) acquireSendInstance(ts *cri.ThreadState) (*simInstance, func()) {
	if p.cfg.Assignment == cri.FreeList {
		if len(p.freeList) > 0 {
			i := p.freeList[0]
			p.freeList = p.freeList[1:]
			p.spcs.Inc(spc.FreeListAcquires)
			return p.instances[i], func() { p.freeList = append(p.freeList, i) }
		}
		p.spcs.Inc(spc.FreeListEmpty)
		return p.instances[p.nextRR()], func() {}
	}
	return p.instanceFor(ts), func() {}
}

// addComm registers a communicator with nRanks members on this proc.
func (p *simProc) addComm(id uint32, nRanks int) *simComm {
	c := &simComm{
		id:     id,
		lock:   p.cfg.newLock(p.env, "match"),
		seq:    match.NewSeqTracker(nRanks),
		anyTag: p.cfg.AnyTagRecv,
	}
	if n := p.cfg.MatchShards; n > 0 {
		sh := match.NewSharded(id, nRanks, n, p.costs, &c.meter, p.spcs)
		c.sharded = sh
		c.engine = sh
		c.shardLocks = make([]*sim.Lock, sh.NumShards())
		for i := range c.shardLocks {
			c.shardLocks[i] = p.cfg.newLock(p.env, "match.shard")
		}
	} else if p.cfg.HashMatching {
		c.engine = match.NewHashEngine(id, nRanks, p.costs, &c.meter, p.spcs)
	} else {
		c.engine = match.NewEngine(id, nRanks, p.costs, &c.meter, p.spcs)
	}
	c.engine.SetAllowOvertaking(p.cfg.AllowOvertaking)
	// The matching lock serializes the engine, so one ring per comm; the
	// recorder's clock-holder gives the events virtual timestamps.
	c.engine.BindFlight(p.flight.NewRing(fmt.Sprintf("rank%d/comm%d", p.frank, id)))
	p.comms[id] = c
	return c
}

// acquireMatch takes the virtual lock(s) covering matching at (src, tag):
// the single communicator lock normally, or — sharded — the one partition
// lock for exact coordinates and every partition lock (ascending, the
// engine's own wildcard order) for wildcards. Returns the contended wait and
// the release closure.
func (c *simComm) acquireMatch(sp *sim.Proc, src, tag int32) (time.Duration, func()) {
	if c.sharded == nil {
		w := c.lock.Acquire(sp)
		return w, func() { c.lock.Release(sp) }
	}
	if src != match.AnySource && tag != match.AnyTag {
		l := c.shardLocks[c.sharded.ShardOf(src, tag)]
		w := l.Acquire(sp)
		return w, func() { l.Release(sp) }
	}
	var w time.Duration
	for _, l := range c.shardLocks {
		w += l.Acquire(sp)
	}
	return w, func() {
		for _, l := range c.shardLocks {
			l.Release(sp)
		}
	}
}

// nextRR advances the deterministic round-robin instance counter.
func (p *simProc) nextRR() int {
	i := int(p.rr % uint64(len(p.instances)))
	p.rr++
	return i
}

// instanceFor applies the assignment strategy (Algorithm 1).
func (p *simProc) instanceFor(ts *cri.ThreadState) *simInstance {
	if p.cfg.Assignment == cri.Dedicated {
		if ts.Dedicated() < 0 {
			// First use: assign round-robin and cache (the TLS write).
			*ts = cri.NewThreadState(p.nextRR())
		}
		return p.instances[ts.Dedicated()]
	}
	return p.instances[p.nextRR()]
}

// flowState is the per-pair eager flow control: sent counts injections,
// consumed counts fragments the receiver has extracted, and matched is the
// credit count actually returned to the sender — advanced in AckBatch
// chunks, as piggybacked BTL ACKs are. Batched returns make blocked
// senders wake to credit *bursts*; many threads bursting at once is what
// interleaves sequence numbers so heavily in real runs (Table II's 83-94%
// out-of-sequence rates).
type flowState struct {
	sent     int64
	consumed int64
	matched  int64
	ackBatch int64
}

// consume records one extracted fragment, returning credits in batches.
func (fs *flowState) consume() {
	fs.consumed++
	if fs.consumed-fs.matched >= fs.ackBatch {
		fs.matched = fs.consumed
	}
}

// simThread is one communicating thread in the model.
type simThread struct {
	proc *simProc
	ts   cri.ThreadState

	pendingSends int64 // outstanding send completions
	recvsDone    int64 // matched receives attributed to this thread
	flow         flowState

	// rng drives the deterministic send-path jitter (LCG).
	rng uint64
	// frng drives the deterministic fault rolls (separate stream so fault
	// flags do not perturb the jitter sequence of fault-free runs).
	frng uint64

	// used tracks the instances this thread has issued one-sided
	// operations on; flush reaps completions from exactly these.
	used []*simInstance

	// scratch receives Deliver completions. It must be per-thread, not
	// per-comm: under sharded matching two delivering threads interleave at
	// virtual-time yields (the meter advances the clock mid-match), and a
	// shared buffer would let one thread's completions clobber the other's.
	scratch []match.Completion

	// clk decomposes this thread's virtual time into exclusive phases; it
	// records nothing until the workload starts it (see vClock).
	clk vClock

	// fring is this thread's flight-recorder ring (nil when the recorder
	// is off); events carry explicit virtual timestamps via RecordAt.
	fring *flight.Ring
}

func newSimThread(p *simProc) *simThread {
	t := &simThread{proc: p, ts: cri.NewThreadState(-1)}
	t.flow.ackBatch = int64(p.cfg.AckBatch)
	if t.flow.ackBatch <= 0 {
		t.flow.ackBatch = 1
	}
	p.nThreads++
	p.threads = append(p.threads, t)
	t.fring = p.flight.NewRing(fmt.Sprintf("rank%d/t%d", p.frank, p.nThreads-1))
	t.rng = uint64(p.nThreads) * 0x9E3779B97F4A7C15
	t.frng = uint64(p.cfg.FaultSeed)*0xD1B54A32D192ED03 ^ uint64(p.nThreads)*0x9E3779B97F4A7C15
	return t
}

// faultRoll returns the next deterministic uniform draw in [0, 1).
func (t *simThread) faultRoll() float64 {
	t.frng = t.frng*6364136223846793005 + 1442695040888963407
	return float64(t.frng>>11) / float64(1<<53)
}

// faultFate rolls one packet's fault verdicts, mirroring
// fabric.FaultInjector on virtual time: each drop costs the sender one
// backed-off retransmission timeout (the ack never comes, the reliability
// sweep resends) until a copy survives or the retry budget runs out; a
// delayed packet is held before reaching the remote queue; a duplicated
// packet is delivered twice and discarded by matching-layer dedup. Fault
// counters land on the sending proc's set, as the real injector's do.
func (t *simThread) faultFate(sp *sim.Proc) (delay time.Duration, copies int) {
	p := t.proc
	cfg := &p.cfg
	copies = 1
	rto := simRTO
	for attempt := 0; attempt <= simRetryBudget; attempt++ {
		if t.faultRoll() >= cfg.FaultDrop {
			break
		}
		p.spcs.Inc(spc.FaultPacketsDropped)
		p.spcs.Inc(spc.Retransmits)
		t.fring.RecordAt(sp.Now(), flight.KindRetransmit, 0, int32(attempt+1), int32(rto/time.Microsecond))
		delay += rto
		rto *= 2
	}
	if cfg.FaultDup > 0 && t.faultRoll() < cfg.FaultDup {
		p.spcs.Inc(spc.FaultPacketsDuplicated)
		copies = 2
	}
	if cfg.FaultDelay > 0 && t.faultRoll() < cfg.FaultDelay {
		p.spcs.Inc(spc.FaultPacketsDelayed)
		delay += cfg.FaultDelayDur
	}
	return delay, copies
}

// jitter returns the next deterministic send-path delay in [0, SendJitter).
func (t *simThread) jitter() time.Duration {
	t.rng = t.rng*6364136223846793005 + 1442695040888963407
	span := int64(t.proc.cfg.SendJitter)
	if span <= 0 {
		return 0
	}
	return time.Duration(int64(t.rng>>33) % span)
}

// backoffWait spins in virtual time until pred holds, without driving
// progress (for conditions another process resolves).
func (t *simThread) backoffWait(sp *sim.Proc, pred func() bool) {
	backoff := retryCost
	for !pred() {
		sp.Advance(backoff)
		sp.Yield()
		if backoff < maxBackoff {
			backoff *= 2
		}
	}
}

// send injects one message: instance acquisition per strategy, instance
// lock, injection CPU cost, wire reservation, delivery to the remote
// instance's queue (with back-pressure), and a local send-completion CQE.
func (t *simThread) send(sp *sim.Proc, c *simComm, dst *simProc, srcRank, dstRank, tag int32) {
	p := t.proc
	t.clk.begin(sp, prof.PhaseSend)
	defer t.clk.end(sp)
	// Send-post instant for critical-path attribution: the CRI-acquire stage
	// starts here, so credit backoff is attributed like any other wait for a
	// communication resource.
	var latPost int64
	if p.lat != nil {
		latPost = sp.Now()
	}
	// Eager flow control: stall until the receiver's matching engine has
	// consumed enough of our earlier messages.
	credits := int64(p.cfg.Credits)
	t.backoffWait(sp, func() bool { return t.flow.sent-t.flow.matched < credits })

	// Request allocation serializes on process-wide memory management.
	p.memSerial.Reserve(sp, 0)
	seq := c.seq.Next(dstRank)
	t.fring.RecordAt(sp.Now(), flight.KindSendPost, c.id, dstRank, int32(seq))
	// Between sequence assignment and the doorbell lies the descriptor
	// build, whose latency varies with cache/allocator state. This window
	// is where concurrent threads overtake each other and inject out of
	// sequence order (Section II-C).
	sp.Advance(t.jitter())
	copies := 1
	if p.cfg.faultsEnabled() {
		var faultDelay time.Duration
		faultDelay, copies = t.faultFate(sp)
		if faultDelay > 0 {
			// Retransmission timeouts and held-back deliveries push this
			// packet's arrival past traffic injected meanwhile — the same
			// reordering the wall-clock injector's delay queue produces.
			t.clk.begin(sp, prof.PhaseRetransmit)
			sp.Advance(faultDelay)
			t.clk.end(sp)
		}
	}
	env := fabric.Envelope{
		Src: srcRank, Dst: dstRank, Tag: tag, Comm: c.id,
		Seq: seq, Len: uint32(p.cfg.MsgSize), Kind: fabric.KindEager,
	}
	pkt := fabric.NewPacketRaw(env, nil, &t.flow)
	if p.lat != nil {
		// Same deterministic id scheme as core's traceID, on world ranks, and
		// no wire-byte cost: attribution marks the in-memory packet only, so
		// (unlike Traced) the makespan is byte-identical with the layer off.
		pkt.TraceID = uint64(p.frank+1)<<48 | uint64(c.id&0xffff)<<32 | uint64(seq)
		pkt.Origin = int32(p.frank)
		pkt.Stamp = latPost
	}

	if p.bigLock != nil {
		t.clk.begin(sp, prof.PhaseLockWait)
		p.bigLock.Acquire(sp)
		t.clk.end(sp)
	}
	inst, putBack := p.acquireSendInstance(&t.ts)
	p.noteConn(dst, inst.index)
	if p.cfg.LockFreeCQ {
		// Lock-free completion ring: the slot claim is an atomic CAS — the
		// same cost class as the lock model's uncontended acquire (zero
		// virtual time) — and the producer never blocks or pays a handoff.
	} else {
		t.clk.begin(sp, prof.PhaseLockWait)
		instWait := inst.lock.Acquire(sp)
		t.clk.end(sp)
		if instWait >= flight.DefaultLockWaitThreshold {
			t.fring.RecordAt(sp.Now(), flight.KindLockWait, 0, int32(inst.index), int32(instWait/time.Microsecond))
		}
	}
	if p.lat != nil {
		// CRI acquired (send post to instance held, including credit backoff
		// and any lock convoy above).
		pkt.SendAcqNs = sp.Now() - latPost
	}
	sp.Advance(p.costs.SendInject)
	header := fabric.EnvelopeSize
	if p.cfg.Traced {
		header += fabric.TraceExtSize
	}
	t.clk.begin(sp, prof.PhaseWire)
	p.wire.Reserve(sp, header+p.cfg.MsgSize)

	remote := dst.instances[inst.index%len(dst.instances)]
	// Hardware back-pressure: stall while the remote receive queue is full.
	for len(remote.rxQ) >= p.cfg.QueueDepth {
		sp.Advance(retryCost)
		sp.Yield()
	}
	if p.lat != nil {
		// Injection complete: wire-write stage ends and the packet arrives at
		// the receiver's transport in the same virtual instant (transit is 0
		// by construction on the model's wire). Fields are final before the
		// append publishes the pointer; the sender-local stages also land in
		// the sender's histograms here.
		now := sp.Now()
		pkt.SendWireNs = now - latPost - pkt.SendAcqNs
		pkt.ArriveNs = now
		p.lat.ObserveStage(latency.StageCRIAcquire, pkt.SendAcqNs)
		p.lat.ObserveStage(latency.StageWireWrite, pkt.SendWireNs)
	}
	remote.rxQ = append(remote.rxQ, cqe{pkt: pkt})
	if copies > 1 {
		// The duplicate copy consumes wire time too; matching-layer dedup
		// discards it on the far side.
		p.wire.Reserve(sp, header+p.cfg.MsgSize)
		remote.rxQ = append(remote.rxQ, cqe{pkt: pkt})
	}
	t.clk.end(sp)
	inst.cq = append(inst.cq, cqe{pending: &t.pendingSends})
	if !p.cfg.LockFreeCQ {
		inst.lock.Release(sp)
	}
	putBack()
	if p.bigLock != nil {
		p.bigLock.Release(sp)
	}
	t.pendingSends++
	t.flow.sent++
	p.spcs.Inc(spc.MessagesSent)
}

// postRecv posts one receive into the communicator's matching engine.
func (t *simThread) postRecv(sp *sim.Proc, c *simComm, srcRank, tag int32) {
	p := t.proc
	t.clk.begin(sp, prof.PhaseMatch)
	defer t.clk.end(sp)
	if p.bigLock != nil {
		t.clk.begin(sp, prof.PhaseLockWait)
		p.bigLock.Acquire(sp)
		t.clk.end(sp)
		defer p.bigLock.Release(sp)
	}
	if c.anyTag {
		tag = match.AnyTag
	}
	// Receive-request construction happens outside the matching lock.
	sp.Advance(p.costs.RecvPost)
	p.memSerial.Reserve(sp, 0)
	r := &match.Recv{Source: srcRank, Tag: tag, Token: t}
	t.clk.begin(sp, prof.PhaseLockWait)
	waited, release := c.acquireMatch(sp, srcRank, tag)
	t.clk.end(sp)
	c.engine.ChargeWait(waited)
	c.meter.p = sp
	p.flightSP = sp
	comp, ok := c.engine.PostRecv(r)
	release()
	if ok {
		// The posted receive matched immediately: the message was sitting in
		// the unexpected queue since its delivery stamp.
		tt := comp.Recv.Token.(*simThread)
		tt.recvsDone++
		p.latRecord(sp, comp, true)
	}
}

// progress is the virtual-time progress engine: Serial takes the global
// try-lock and polls every instance; Concurrent runs Algorithm 2.
// Productive passes mirror onto the flight ring, as the real engine's do.
func (t *simThread) progress(sp *sim.Proc) int {
	count := t.progressPass(sp)
	if count > 0 {
		t.fring.RecordAt(sp.Now(), flight.KindProgress, 0, int32(count), 0)
	}
	return count
}

func (t *simThread) progressPass(sp *sim.Proc) int {
	p := t.proc
	p.spcs.Inc(spc.ProgressCalls)
	if p.bigLock != nil {
		t.clk.begin(sp, prof.PhaseLockWait)
		p.bigLock.Acquire(sp)
		t.clk.end(sp)
		defer p.bigLock.Release(sp)
	}
	if p.cfg.Progress == progress.Serial {
		if !p.progLock.TryAcquire(sp) {
			p.spcs.Inc(spc.ProgressTryLockFail)
			return 0
		}
		t.clk.begin(sp, prof.PhaseProgressOwn)
		count := 0
		for _, inst := range p.instances {
			t.clk.begin(sp, prof.PhaseLockWait)
			inst.lock.Acquire(sp)
			t.clk.end(sp)
			count += t.poll(sp, inst, 64)
			inst.lock.Release(sp)
		}
		p.progLock.Release(sp)
		t.clk.end(sp)
		return count
	}
	// Concurrent (Algorithm 2): dedicated instance first.
	count := 0
	if k := t.ts.Dedicated(); k >= 0 {
		inst := p.instances[k]
		if inst.lock.TryAcquire(sp) {
			t.clk.begin(sp, prof.PhaseProgressOwn)
			count = t.poll(sp, inst, 64)
			t.clk.end(sp)
			inst.lock.Release(sp)
		} else {
			p.spcs.Inc(spc.ProgressTryLockFail)
		}
	}
	if count > 0 {
		return count
	}
	t.clk.begin(sp, prof.PhaseProgressSteal)
	defer t.clk.end(sp)
	for range p.instances {
		inst := p.instances[p.nextRR()]
		if !inst.lock.TryAcquire(sp) {
			p.spcs.Inc(spc.ProgressTryLockFail)
			p.spcs.Inc(spc.ProgressStealLosses)
			continue
		}
		c := t.poll(sp, inst, 64)
		inst.lock.Release(sp)
		count += c
		if count > 0 {
			return count
		}
	}
	return count
}

// poll drains up to max events from one instance under its (held) lock.
func (t *simThread) poll(sp *sim.Proc, inst *simInstance, max int) int {
	p := t.proc
	n := 0
	for n < max && len(inst.cq) > 0 {
		e := inst.cq[0]
		inst.cq = inst.cq[1:]
		sp.Advance(p.costs.RecvExtract)
		*e.pending--
		n++
	}
	for n < max && len(inst.rxQ) > 0 {
		e := inst.rxQ[0]
		inst.rxQ = inst.rxQ[1:]
		sp.Advance(p.costs.RecvExtract)
		t.deliver(sp, e.pkt)
		n++
	}
	if n == 0 {
		sp.Advance(p.costs.CQPollEmpty)
	}
	return n
}

// deliver pushes one inbound packet through its communicator's matching
// engine, accounting lock wait as match time (as Open MPI's SPC does).
func (t *simThread) deliver(sp *sim.Proc, pkt *fabric.Packet) {
	p := t.proc
	env := pkt.Envelope()
	c := p.comms[env.Comm]
	if c == nil {
		// Same graceful degradation as the real runtime: a packet for a
		// torn-down communicator is counted and dropped, never fatal.
		p.spcs.Inc(spc.LatePackets)
		return
	}
	if p.lat != nil && pkt.TraceID != 0 && pkt.RecvStamp == 0 {
		// Matching-engine delivery stamp: the gap from the arrival stamp is
		// the receive-side progress lag (deliver_wait). Write-once so a
		// duplicate copy cannot restamp a message sitting unexpected.
		pkt.RecvStamp = sp.Now()
	}
	// Inbound fragment handling allocates/recycles through process-wide
	// memory management before matching.
	p.memSerial.Reserve(sp, 0)
	// Eager credit returns at fragment consumption (BTL semantics), not at
	// match time — an out-of-sequence message that sits buffered must not
	// stall its sender forever.
	if fs, ok := pkt.Token.(*flowState); ok {
		fs.consume()
	}
	t.clk.begin(sp, prof.PhaseLockWait)
	waited, release := c.acquireMatch(sp, env.Src, env.Tag)
	t.clk.end(sp)
	t.clk.begin(sp, prof.PhaseMatch)
	c.engine.ChargeWait(waited)
	c.meter.p = sp
	p.flightSP = sp
	t.scratch = c.engine.Deliver(pkt, t.scratch[:0])
	comps := t.scratch
	t.clk.end(sp)
	release()
	for _, comp := range comps {
		tt := comp.Recv.Token.(*simThread)
		tt.recvsDone++
		c.postedOut++
		p.latRecord(sp, comp, false)
	}
}

// latRecord folds one matched completion into the attribution recorder:
// every stage derives from the deterministic schedule's stamps, no virtual
// time is charged, and the in-model completion coincides with the match
// (the complete stage is 0 by construction). Nil-safe and untraced-safe.
func (p *simProc) latRecord(sp *sim.Proc, comp match.Completion, unexpected bool) {
	pkt := comp.Packet
	if p.lat == nil || pkt == nil || pkt.TraceID == 0 {
		return
	}
	now := sp.Now()
	m := latency.Measurement{
		TraceID:       pkt.TraceID,
		Origin:        pkt.Origin,
		Tag:           comp.Recv.MatchedEnv.Tag,
		Unexpected:    unexpected,
		E2ENs:         now - pkt.Stamp,
		CompletedAtNs: now,
	}
	for i := range m.StageNs {
		m.StageNs[i] = latency.Unknown
	}
	m.StageNs[latency.StageCRIAcquire] = pkt.SendAcqNs
	m.StageNs[latency.StageWireWrite] = pkt.SendWireNs
	m.StageNs[latency.StageTransit] = 0 // arrival coincides with injection
	if pkt.RecvStamp != 0 {
		m.StageNs[latency.StageDeliverWait] = pkt.RecvStamp - pkt.ArriveNs
		ms := latency.StageMatchPosted
		if unexpected {
			ms = latency.StageMatchUnexpected
		}
		m.StageNs[ms] = now - pkt.RecvStamp
	}
	m.StageNs[latency.StageComplete] = 0
	p.lat.Record(m)
}

// waitFor spins (in virtual time) until pred holds, driving progress with
// adaptive backoff on idle passes. Under the software-offload design the
// dedicated thread owns the progress engine, so waiters only back off.
func (t *simThread) waitFor(sp *sim.Proc, pred func() bool) {
	if t.proc.cfg.ProgressThread {
		t.backoffWait(sp, pred)
		return
	}
	backoff := retryCost
	for !pred() {
		if t.progress(sp) == 0 {
			sp.Advance(backoff)
			sp.Yield()
			if backoff < maxBackoff {
				backoff *= 2
			}
		} else {
			backoff = retryCost
		}
	}
}

// anyQueued reports whether any instance still holds events.
func (p *simProc) anyQueued() bool {
	for _, in := range p.instances {
		if in.queued() > 0 {
			return true
		}
	}
	return false
}

// spawnOffload starts the dedicated progress thread for p, which runs
// until every workload thread has finished and the queues are drained.
func (p *simProc) spawnOffload(env *sim.Env, name string) {
	if !p.cfg.ProgressThread {
		return
	}
	t := newSimThread(p)
	env.Go(name, 0, func(sp *sim.Proc) {
		backoff := retryCost
		for p.finished < p.nWork || p.anyQueued() {
			if t.offloadProgress(sp) == 0 {
				sp.Advance(backoff)
				sp.Yield()
				if backoff < maxBackoff {
					backoff *= 2
				}
			} else {
				backoff = retryCost
			}
		}
	})
}

// offloadProgress is the offload thread's engine pass: it bypasses the
// ProgressThread waiting discipline and drives the configured engine.
func (t *simThread) offloadProgress(sp *sim.Proc) int {
	return t.progress(sp)
}
