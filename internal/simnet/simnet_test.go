package simnet

import (
	"testing"

	"repro/internal/cri"
	"repro/internal/hw"
	"repro/internal/progress"
	"repro/internal/spc"
)

func baseCfg(pairs int) Config {
	return Config{
		Machine: hw.AlembertHaswell(),
		Pairs:   pairs,
		Window:  64,
		Iters:   4,
	}
}

func TestMultirateCompletesAndCounts(t *testing.T) {
	cfg := baseCfg(2)
	res := RunMultirate(cfg)
	want := int64(2 * 64 * 4)
	if res.Messages != want {
		t.Fatalf("Messages = %d, want %d", res.Messages, want)
	}
	if res.Makespan <= 0 || res.Rate <= 0 {
		t.Fatalf("Makespan = %v, Rate = %v", res.Makespan, res.Rate)
	}
	if got := res.SPCs.Get(spc.MessagesReceived); got != want {
		t.Fatalf("messages_received = %d, want %d", got, want)
	}
}

func TestMultirateDeterministic(t *testing.T) {
	cfg := baseCfg(4)
	a := RunMultirate(cfg)
	b := RunMultirate(cfg)
	if a.Makespan != b.Makespan {
		t.Fatalf("nondeterministic makespan: %v vs %v", a.Makespan, b.Makespan)
	}
	if a.SPCs.Get(spc.OutOfSequence) != b.SPCs.Get(spc.OutOfSequence) {
		t.Fatal("nondeterministic OOS count")
	}
}

func TestDedicatedInstancesBeatSingleInstance(t *testing.T) {
	// Fig. 3a: with serial progress, 20 dedicated instances must beat the
	// single shared instance at the paper's operating point (20 thread
	// pairs, window 128).
	single := baseCfg(20)
	single.Window = 128
	single.NumInstances = 1
	multi := baseCfg(20)
	multi.Window = 128
	multi.NumInstances = 20
	multi.Assignment = cri.Dedicated
	rs, rm := RunMultirate(single), RunMultirate(multi)
	if rm.Rate <= rs.Rate {
		t.Fatalf("dedicated (%.0f msg/s) did not beat single instance (%.0f msg/s)", rm.Rate, rs.Rate)
	}
}

func TestConcurrentProgressHurtsOnSharedComm(t *testing.T) {
	// Fig. 3b: concurrent progress with a single communicator must NOT
	// beat serial progress — the matching lock funnels everything.
	serial := baseCfg(16)
	serial.NumInstances = 16
	serial.Assignment = cri.Dedicated
	serial.Progress = progress.Serial
	conc := serial
	conc.Progress = progress.Concurrent
	rs, rc := RunMultirate(serial), RunMultirate(conc)
	if rc.Rate > rs.Rate*1.15 {
		t.Fatalf("concurrent progress (%.0f) substantially beat serial (%.0f) on a shared communicator", rc.Rate, rs.Rate)
	}
	// Table II: match time grows under concurrent progress.
	if rc.SPCs.MatchTime() <= rs.SPCs.MatchTime() {
		t.Fatalf("match time did not grow: serial %v, concurrent %v",
			rs.SPCs.MatchTime(), rc.SPCs.MatchTime())
	}
}

func TestCommPerPairUnlocksConcurrentMatching(t *testing.T) {
	// Fig. 3c: comm-per-pair + concurrent progress + dedicated instances
	// must clearly beat the stock configuration.
	stock := baseCfg(16)
	best := baseCfg(16)
	best.NumInstances = 16
	best.Assignment = cri.Dedicated
	best.Progress = progress.Concurrent
	best.CommPerPair = true
	r0, r1 := RunMultirate(stock), RunMultirate(best)
	if r1.Rate < r0.Rate*2 {
		t.Fatalf("concurrent matching (%.0f) not >= 2x stock (%.0f)", r1.Rate, r0.Rate)
	}
}

func TestOOSCollapsesWithCommPerPairAndDedicated(t *testing.T) {
	// Table II: shared comm -> massive OOS; comm-per-pair with one
	// instance per pair -> zero OOS.
	shared := baseCfg(8)
	shared.NumInstances = 8
	shared.Assignment = cri.Dedicated
	shared.Progress = progress.Concurrent
	perPair := shared
	perPair.CommPerPair = true
	rs, rp := RunMultirate(shared), RunMultirate(perPair)
	if pct := rs.SPCs.OutOfSequencePercent(); pct < 20 {
		t.Fatalf("shared-comm OOS%% = %.1f, want large", pct)
	}
	if got := rp.SPCs.Get(spc.OutOfSequence); got != 0 {
		t.Fatalf("comm-per-pair dedicated OOS = %d, want 0", got)
	}
}

func TestOvertakingEliminatesOOS(t *testing.T) {
	cfg := baseCfg(8)
	cfg.NumInstances = 8
	cfg.Assignment = cri.Dedicated
	cfg.AllowOvertaking = true
	cfg.AnyTagRecv = true
	res := RunMultirate(cfg)
	if got := res.SPCs.Get(spc.OutOfSequence); got != 0 {
		t.Fatalf("overtaking OOS = %d, want 0", got)
	}
	if res.Messages != 8*64*4 {
		t.Fatalf("Messages = %d", res.Messages)
	}
}

func TestProcessModeBeatsThreadMode(t *testing.T) {
	// Fig. 5's headline: process mode far outpaces stock thread mode.
	thread := baseCfg(8)
	proc := baseCfg(8)
	proc.ProcessMode = true
	rt, rp := RunMultirate(thread), RunMultirate(proc)
	if rp.Rate <= rt.Rate {
		t.Fatalf("process mode (%.0f) did not beat thread mode (%.0f)", rp.Rate, rt.Rate)
	}
}

func TestBigLockClustersWithStock(t *testing.T) {
	// Fig. 5: the stock thread modes of all implementations — per-object
	// locks or one big lock — cluster similarly poorly, far below process
	// mode.
	stock := baseCfg(8)
	big := baseCfg(8)
	big.BigLock = true
	proc := baseCfg(8)
	proc.ProcessMode = true
	rs, rb, rp := RunMultirate(stock), RunMultirate(big), RunMultirate(proc)
	if rb.Rate > rs.Rate*1.5 || rs.Rate > rb.Rate*3 {
		t.Fatalf("big-lock (%.0f) and stock (%.0f) do not cluster", rb.Rate, rs.Rate)
	}
	if rp.Rate < 2*rb.Rate {
		t.Fatalf("process mode (%.0f) not well above big-lock (%.0f)", rp.Rate, rb.Rate)
	}
}

func TestSinglePairSane(t *testing.T) {
	res := RunMultirate(baseCfg(1))
	// One pair on Haswell should land in the paper's ballpark
	// (hundreds of K to a few M msg/s).
	if res.Rate < 1e5 || res.Rate > 3e7 {
		t.Fatalf("single-pair rate = %.0f msg/s, outside sanity band", res.Rate)
	}
}

func TestRMAMTDedicatedScales(t *testing.T) {
	base := RMAMTConfig{
		Machine:       hw.TrinititeHaswell(),
		Threads:       1,
		MsgSize:       1,
		PutsPerThread: 200,
		Rounds:        2,
		Assignment:    cri.Dedicated,
	}
	r1 := RunRMAMT(base)
	base.Threads = 8
	r8 := RunRMAMT(base)
	if r8.Rate < r1.Rate*4 {
		t.Fatalf("dedicated RMA did not scale: 1T %.0f vs 8T %.0f", r1.Rate, r8.Rate)
	}
}

func TestRMAMTSingleInstanceFlat(t *testing.T) {
	base := RMAMTConfig{
		Machine:       hw.TrinititeHaswell(),
		Threads:       1,
		MsgSize:       1,
		PutsPerThread: 200,
		Rounds:        2,
		NumInstances:  1,
	}
	r1 := RunRMAMT(base)
	base.Threads = 16
	r16 := RunRMAMT(base)
	if r16.Rate > r1.Rate*2 {
		t.Fatalf("single-instance RMA scaled unexpectedly: 1T %.0f vs 16T %.0f", r1.Rate, r16.Rate)
	}
}

func TestRMAMTDedicatedBeatsRoundRobin(t *testing.T) {
	cfg := RMAMTConfig{
		Machine:       hw.TrinititeHaswell(),
		Threads:       16,
		MsgSize:       128,
		PutsPerThread: 200,
		Rounds:        2,
		Assignment:    cri.Dedicated,
	}
	rd := RunRMAMT(cfg)
	cfg.Assignment = cri.RoundRobin
	rr := RunRMAMT(cfg)
	if rd.Rate <= rr.Rate {
		t.Fatalf("dedicated (%.0f) did not beat round-robin (%.0f)", rd.Rate, rr.Rate)
	}
}

func TestRMAMTLargeSizeBandwidthBound(t *testing.T) {
	m := hw.TrinititeHaswell()
	cfg := RMAMTConfig{
		Machine:       m,
		Threads:       32,
		MsgSize:       16384,
		PutsPerThread: 100,
		Rounds:        2,
		Assignment:    cri.Dedicated,
	}
	res := RunRMAMT(cfg)
	peak := m.PeakMessageRate(16384)
	if res.Rate > peak*1.05 {
		t.Fatalf("rate %.0f exceeds theoretical peak %.0f", res.Rate, peak)
	}
	if res.Rate < peak*0.5 {
		t.Fatalf("32 dedicated threads at 16 KiB reached only %.0f of peak %.0f", res.Rate, peak)
	}
}

func TestRMAMTCountsPuts(t *testing.T) {
	cfg := RMAMTConfig{
		Machine:       hw.TrinititeKNL(),
		Threads:       4,
		MsgSize:       8,
		PutsPerThread: 50,
		Rounds:        3,
		Assignment:    cri.Dedicated,
	}
	res := RunRMAMT(cfg)
	if res.Messages != 4*50*3 {
		t.Fatalf("Messages = %d, want %d", res.Messages, 4*50*3)
	}
	if got := res.SPCs.Get(spc.PutsIssued); got != 600 {
		t.Fatalf("puts_issued = %d, want 600", got)
	}
	if got := res.SPCs.Get(spc.FlushCalls); got != 12 {
		t.Fatalf("flush_calls = %d, want 12", got)
	}
}
