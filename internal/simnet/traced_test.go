package simnet

import (
	"testing"

	"repro/internal/hw"
)

// The trace-context extension must cost wire time on the virtual fabric
// exactly like it does on the real one: a traced sweep is deterministically
// reproducible and never faster than the untraced twin.
func TestTracedWireCost(t *testing.T) {
	base := Config{Machine: hw.Fast(), Pairs: 4, Window: 32, Iters: 4, MsgSize: 64}

	plain := RunMultirate(base)
	traced := base
	traced.Traced = true
	on := RunMultirate(traced)
	on2 := RunMultirate(traced)

	if on.Makespan != on2.Makespan || on.Messages != on2.Messages {
		t.Fatalf("traced run not deterministic: %v/%d vs %v/%d",
			on.Makespan, on.Messages, on2.Makespan, on2.Messages)
	}
	if on.Messages != plain.Messages {
		t.Fatalf("traced run moved %d messages, untraced %d", on.Messages, plain.Messages)
	}
	if on.Makespan < plain.Makespan {
		t.Fatalf("traced makespan %v beat untraced %v despite extra header bytes",
			on.Makespan, plain.Makespan)
	}
}
