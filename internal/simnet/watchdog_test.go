package simnet

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/flight"
	"repro/internal/hw"
)

// stallConfig injects a receiver stall the watchdog must catch: one pair,
// with the receiver leaving a freshly posted window unserviced for 50ms of
// virtual time.
func stallConfig() Config {
	return Config{
		Machine: hw.Fast(), Pairs: 1, Window: 64, Iters: 4,
		FlightCapacity:   2048,
		Watchdog:         &flight.DetectorConfig{StallAfter: 5 * time.Millisecond},
		WatchdogInterval: time.Millisecond,
		StallRecv:        50 * time.Millisecond,
		StallAfterIter:   2,
	}
}

// An injected receiver stall must produce a watchdog dump that names the
// stalled rank, phase, and site, carrying the queue snapshot and flight
// record that explain it.
func TestSimWatchdogCatchesInjectedStall(t *testing.T) {
	res := RunMultirate(stallConfig())
	if len(res.Dumps) == 0 {
		t.Fatal("injected 50ms stall produced no watchdog dumps")
	}
	d := res.Dumps[0]
	if d.Rank != 1 {
		t.Fatalf("stall attributed to rank %d, want the receiver (1)", d.Rank)
	}
	if d.Verdict.Reason != "no-progress" {
		t.Fatalf("verdict reason = %q", d.Verdict.Reason)
	}
	if d.Verdict.Phase != "progress" {
		t.Fatalf("verdict phase = %q", d.Verdict.Phase)
	}
	if d.Verdict.Site == "" || d.Verdict.Detail == "" {
		t.Fatalf("verdict lacks site/detail: %+v", d.Verdict)
	}
	var posted int
	for _, cq := range d.Queues.Comms {
		posted += cq.Posted
	}
	if posted == 0 {
		t.Fatalf("dump snapshot shows no posted receives: %+v", d.Queues)
	}
	if len(d.Record.Events) == 0 {
		t.Fatal("dump carries no flight record")
	}
	// The record must include the receiver's posted window (recv_post from
	// the matching engine's hook, stamped in virtual time).
	var recvPosts int
	for _, e := range d.Record.Events {
		if e.Kind == flight.KindRecvPost {
			recvPosts++
		}
	}
	if recvPosts == 0 {
		t.Fatalf("flight record has no recv_post events among %d", len(d.Record.Events))
	}
	// The stall ends, so the run still completes all messages.
	if want := int64(1 * 64 * 4); res.Messages != want {
		t.Fatalf("messages = %d, want %d", res.Messages, want)
	}
	if len(res.Flight) != 2 || len(res.Queues) != 2 {
		t.Fatalf("result flight/queues = %d/%d ranks", len(res.Flight), len(res.Queues))
	}
}

// The watchdog's dumps — verdicts, snapshots, and the full flight record —
// must serialize to identical bytes on every run of the same configuration.
func TestSimWatchdogDeterminism(t *testing.T) {
	run := func() []byte {
		res := RunMultirate(stallConfig())
		var buf bytes.Buffer
		for _, d := range res.Dumps {
			if err := flight.WriteDump(&buf, d); err != nil {
				t.Fatal(err)
			}
		}
		if err := flight.WriteRecords(&buf, res.Flight); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no dump bytes produced")
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("watchdog dumps differ across identical runs (%d vs %d bytes)", len(a), len(b))
	}
}

// Recording advances no virtual time: a flight-enabled run reproduces the
// flight-off makespan and counters exactly. This is the sim twin of the
// bench-gate requirement that the recorder off changes nothing.
func TestSimFlightRecordingIsTimeNeutral(t *testing.T) {
	base := Config{Machine: hw.Fast(), Pairs: 4, Window: 64, Iters: 4}
	off := RunMultirate(base)
	on := base
	on.FlightCapacity = 1024
	got := RunMultirate(on)
	if got.Makespan != off.Makespan {
		t.Fatalf("flight recording changed makespan: %v vs %v", got.Makespan, off.Makespan)
	}
	if got.SPCs != off.SPCs {
		t.Fatalf("flight recording changed counters:\n%v\nvs\n%v", got.SPCs, off.SPCs)
	}
	if len(got.Flight) != 2 || len(got.Flight[0].Events) == 0 || len(got.Flight[1].Events) == 0 {
		t.Fatalf("flight-enabled run recorded no events")
	}
}

// A healthy run must not fire the watchdog.
func TestSimWatchdogQuietOnHealthyRun(t *testing.T) {
	cfg := stallConfig()
	cfg.StallRecv = 0
	res := RunMultirate(cfg)
	if len(res.Dumps) != 0 {
		t.Fatalf("healthy run fired %d watchdog dumps; first: %+v", len(res.Dumps), res.Dumps[0].Verdict)
	}
}
