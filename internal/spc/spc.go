// Package spc implements Software-based Performance Counters in the style
// of Open MPI's SPC framework (Eberius et al., EuroMPI'17): low-overhead
// atomic counters exposing internal message-engine statistics such as the
// number of out-of-sequence messages and the cumulative time spent in the
// matching engine. The paper's Table II is produced from these counters.
package spc

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// Counter identifies one software performance counter.
type Counter int

// The counters tracked by the runtime. The first two are the ones the paper
// reports in Table II; the rest give additional low-level visibility.
const (
	// OutOfSequence counts received messages whose sequence number did not
	// match the next expected sequence for their (peer, communicator) stream
	// and therefore had to be buffered.
	OutOfSequence Counter = iota
	// MatchTimeNanos accumulates wall time spent inside the matching
	// critical section, in nanoseconds.
	MatchTimeNanos
	// MessagesSent counts point-to-point messages injected.
	MessagesSent
	// MessagesReceived counts point-to-point messages matched and delivered.
	MessagesReceived
	// UnexpectedMessages counts messages that arrived before a matching
	// receive was posted.
	UnexpectedMessages
	// ExpectedMessages counts messages matched against an already-posted
	// receive.
	ExpectedMessages
	// UnexpectedQueuePeak tracks the maximum length reached by any
	// unexpected-message queue.
	UnexpectedQueuePeak
	// PostedQueuePeak tracks the maximum length reached by any
	// posted-receive queue.
	PostedQueuePeak
	// MatchAttempts counts entries into the matching engine.
	MatchAttempts
	// MatchWalkElements accumulates the number of queue elements walked
	// during matching searches (posted + unexpected).
	MatchWalkElements
	// ProgressCalls counts entries into the progress engine.
	ProgressCalls
	// ProgressTryLockFail counts try-lock failures on instance locks inside
	// the progress engine (a direct measure of progress contention).
	ProgressTryLockFail
	// SendLockWaits counts send-path instance-lock acquisitions that found
	// the lock contended.
	SendLockWaits
	// PutsIssued counts one-sided put operations initiated.
	PutsIssued
	// GetsIssued counts one-sided get operations initiated.
	GetsIssued
	// AccumulatesIssued counts one-sided accumulate operations initiated.
	AccumulatesIssued
	// FlushCalls counts window flush synchronizations.
	FlushCalls
	// LatePackets counts inbound packets (data or control) that arrived for
	// a communicator or protocol state already torn down — e.g. a packet for
	// a freed communicator, or an orphaned rendezvous control message. They
	// are counted and dropped, never fatal.
	LatePackets
	// DuplicateSequences counts matching-layer arrivals whose sequence
	// number was already delivered or already buffered (possible once the
	// fabric can duplicate packets); the duplicates are discarded.
	DuplicateSequences
	// FaultPacketsDropped counts packets the fault injector ate on the wire.
	FaultPacketsDropped
	// FaultPacketsDuplicated counts packets the fault injector delivered twice.
	FaultPacketsDuplicated
	// FaultPacketsDelayed counts packets the fault injector held back.
	FaultPacketsDelayed
	// Retransmits counts reliability-layer packet retransmissions.
	Retransmits
	// RetransmitFailures counts sends abandoned after the retry budget was
	// exhausted (surfaced to the caller as ErrPeerUnreachable).
	RetransmitFailures
	// DuplicatePackets counts transport-level duplicate deliveries the
	// reliability layer's receive-side dedup discarded.
	DuplicatePackets
	// AcksSent counts reliability acknowledgements injected.
	AcksSent
	// AcksReceived counts reliability acknowledgements processed.
	AcksReceived
	// DialRetries counts transport connection attempts that failed and were
	// retried while a peer's listener came up.
	DialRetries
	// Reconnects counts transport connections re-established after a write
	// failure on an existing connection.
	Reconnects
	// ShortWrites counts wire writes that moved only part of a frame before
	// failing (the tail of the frame never reached the kernel).
	ShortWrites
	// ProgressStealLosses counts failed try-locks during the concurrent
	// progress engine's round-robin sweep over OTHER threads' instances
	// (Algorithm 2's helper role) — steal pressure, distinct from
	// ProgressTryLockFail which also counts dedicated-instance losses.
	ProgressStealLosses
	// FreeListAcquires counts send-path instance acquisitions satisfied by
	// the atomic free-list pop (an exclusively owned, uncontended instance).
	FreeListAcquires
	// FreeListEmpty counts send-path acquisitions that found the free-list
	// drained and fell back to contended round-robin (threads > instances).
	FreeListEmpty
	// ConnsOpened counts physical connections this process established to a
	// peer (a successful dial, or the first lazy resolution of a simulated
	// peer pair). With multiplexed transports every context of a peer pair
	// shares one physical connection, so the surviving connection count per
	// process is ConnsOpened − DialRacesLost.
	ConnsOpened
	// ConnsReused counts endpoint establishments satisfied by an existing
	// physical connection to the peer (the multiplexing win: no new socket).
	ConnsReused
	// DialRacesLost counts symmetric-dial races this process lost: both
	// sides of a peer pair dialed concurrently and this side discarded its
	// own connection, adopting the winner's (lower rank's dial wins).
	DialRacesLost

	numCounters
)

var counterNames = [...]string{
	OutOfSequence:          "out_of_sequence",
	MatchTimeNanos:         "match_time_ns",
	MessagesSent:           "messages_sent",
	MessagesReceived:       "messages_received",
	UnexpectedMessages:     "unexpected_messages",
	ExpectedMessages:       "expected_messages",
	UnexpectedQueuePeak:    "unexpected_queue_peak",
	PostedQueuePeak:        "posted_queue_peak",
	MatchAttempts:          "match_attempts",
	MatchWalkElements:      "match_walk_elements",
	ProgressCalls:          "progress_calls",
	ProgressTryLockFail:    "progress_trylock_fail",
	SendLockWaits:          "send_lock_waits",
	PutsIssued:             "puts_issued",
	GetsIssued:             "gets_issued",
	AccumulatesIssued:      "accumulates_issued",
	FlushCalls:             "flush_calls",
	LatePackets:            "late_packets",
	DuplicateSequences:     "duplicate_sequences",
	FaultPacketsDropped:    "fault_packets_dropped",
	FaultPacketsDuplicated: "fault_packets_duplicated",
	FaultPacketsDelayed:    "fault_packets_delayed",
	Retransmits:            "retransmits",
	RetransmitFailures:     "retransmit_failures",
	DuplicatePackets:       "duplicate_packets",
	AcksSent:               "acks_sent",
	AcksReceived:           "acks_received",
	DialRetries:            "dial_retries",
	Reconnects:             "reconnects",
	ShortWrites:            "short_writes",
	ProgressStealLosses:    "progress_steal_losses",
	FreeListAcquires:       "freelist_acquires",
	FreeListEmpty:          "freelist_empty",
	ConnsOpened:            "conns_opened",
	ConnsReused:            "conns_reused",
	DialRacesLost:          "dial_races_lost",
}

// String returns the counter's snake_case name.
func (c Counter) String() string {
	if c < 0 || int(c) >= len(counterNames) {
		return fmt.Sprintf("counter(%d)", int(c))
	}
	return counterNames[c]
}

var countersByName = func() map[string]Counter {
	m := make(map[string]Counter, len(counterNames))
	for i, n := range counterNames {
		m[n] = Counter(i)
	}
	return m
}()

// CounterByName resolves a snake_case counter name back to its Counter —
// the inverse of String, used by consumers that re-ingest an exported
// counter dump (e.g. the cluster aggregator parsing a rank's Prometheus
// exposition). Unknown names report ok=false rather than a zero Counter so
// callers can skip counters added by a newer rank binary.
func CounterByName(name string) (c Counter, ok bool) {
	c, ok = countersByName[name]
	return c, ok
}

// NumCounters is the number of defined counters.
const NumCounters = int(numCounters)

// Set is one process's collection of counters. All methods are safe for
// concurrent use. A nil *Set is valid and ignores all updates, so call
// sites need no nil checks on hot paths.
type Set struct {
	enabled atomic.Bool
	vals    [numCounters]atomic.Int64
}

// NewSet returns an enabled counter set.
func NewSet() *Set {
	s := &Set{}
	s.enabled.Store(true)
	return s
}

// Enabled reports whether updates are being recorded.
func (s *Set) Enabled() bool { return s != nil && s.enabled.Load() }

// SetEnabled turns recording on or off. Disabling leaves current values.
func (s *Set) SetEnabled(on bool) {
	if s != nil {
		s.enabled.Store(on)
	}
}

// Add increments c by delta.
func (s *Set) Add(c Counter, delta int64) {
	if s == nil || !s.enabled.Load() {
		return
	}
	s.vals[c].Add(delta)
}

// Inc increments c by one.
func (s *Set) Inc(c Counter) { s.Add(c, 1) }

// Max raises c to v if v is greater than the current value.
func (s *Set) Max(c Counter, v int64) {
	if s == nil || !s.enabled.Load() {
		return
	}
	for {
		cur := s.vals[c].Load()
		if v <= cur || s.vals[c].CompareAndSwap(cur, v) {
			return
		}
	}
}

// Get returns the current value of c.
func (s *Set) Get(c Counter) int64 {
	if s == nil {
		return 0
	}
	return s.vals[c].Load()
}

// Reset zeroes every counter.
func (s *Set) Reset() {
	if s == nil {
		return
	}
	for i := range s.vals {
		s.vals[i].Store(0)
	}
}

// StartTimer returns the current time if the set is enabled, or the zero
// time otherwise. Pair with StopTimer around a timed critical section.
func (s *Set) StartTimer() time.Time {
	if s == nil || !s.enabled.Load() {
		return time.Time{}
	}
	return time.Now()
}

// StopTimer accumulates the elapsed time since start into c. A zero start
// (from a disabled set) is ignored.
func (s *Set) StopTimer(c Counter, start time.Time) {
	if s == nil || start.IsZero() {
		return
	}
	s.vals[c].Add(int64(time.Since(start)))
}

// Snapshot is an immutable copy of a Set's values.
type Snapshot [numCounters]int64

// Snapshot copies the current counter values.
func (s *Set) Snapshot() Snapshot {
	var snap Snapshot
	if s == nil {
		return snap
	}
	for i := range s.vals {
		snap[i] = s.vals[i].Load()
	}
	return snap
}

// Get returns the value of c in the snapshot.
func (sn Snapshot) Get(c Counter) int64 { return sn[c] }

// Sub returns the per-counter difference sn - old. Peak counters
// (UnexpectedQueuePeak, PostedQueuePeak) are carried over, not subtracted,
// since a peak has no meaningful delta.
func (sn Snapshot) Sub(old Snapshot) Snapshot {
	var d Snapshot
	for i := range sn {
		d[i] = sn[i] - old[i]
	}
	d[UnexpectedQueuePeak] = sn[UnexpectedQueuePeak]
	d[PostedQueuePeak] = sn[PostedQueuePeak]
	return d
}

// MatchTime returns the accumulated matching time as a Duration.
func (sn Snapshot) MatchTime() time.Duration {
	return time.Duration(sn[MatchTimeNanos])
}

// OutOfSequencePercent returns 100 * out_of_sequence / messages_received,
// or 0 when nothing was received.
func (sn Snapshot) OutOfSequencePercent() float64 {
	recv := sn[MessagesReceived]
	if recv == 0 {
		return 0
	}
	return 100 * float64(sn[OutOfSequence]) / float64(recv)
}

// String renders the non-zero counters, one per line, sorted by name.
func (sn Snapshot) String() string {
	type kv struct {
		name string
		v    int64
	}
	var rows []kv
	for i, v := range sn {
		if v != 0 {
			rows = append(rows, kv{Counter(i).String(), v})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "%-24s %d\n", r.name, r.v)
	}
	return b.String()
}

// Merge returns the element-wise sum of snapshots, taking the max for peak
// counters. Used to aggregate per-communicator or per-proc counter sets.
func Merge(snaps ...Snapshot) Snapshot {
	var out Snapshot
	for _, sn := range snaps {
		for i, v := range sn {
			c := Counter(i)
			if c == UnexpectedQueuePeak || c == PostedQueuePeak {
				if v > out[i] {
					out[i] = v
				}
			} else {
				out[i] += v
			}
		}
	}
	return out
}
