package spc

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestNilSetIsSafe(t *testing.T) {
	var s *Set
	s.Inc(MessagesSent)
	s.Add(MatchTimeNanos, 100)
	s.Max(PostedQueuePeak, 5)
	s.Reset()
	s.SetEnabled(true)
	s.StopTimer(MatchTimeNanos, s.StartTimer())
	if s.Enabled() {
		t.Fatal("nil set reports enabled")
	}
	if s.Get(MessagesSent) != 0 {
		t.Fatal("nil set returned non-zero counter")
	}
	if sn := s.Snapshot(); sn.Get(MessagesSent) != 0 {
		t.Fatal("nil set snapshot non-zero")
	}
}

func TestAddIncGet(t *testing.T) {
	s := NewSet()
	s.Inc(MessagesSent)
	s.Add(MessagesSent, 4)
	if got := s.Get(MessagesSent); got != 5 {
		t.Fatalf("Get = %d, want 5", got)
	}
}

func TestDisabledSetIgnoresUpdates(t *testing.T) {
	s := NewSet()
	s.SetEnabled(false)
	s.Inc(MessagesSent)
	s.Max(PostedQueuePeak, 9)
	if s.Get(MessagesSent) != 0 || s.Get(PostedQueuePeak) != 0 {
		t.Fatal("disabled set recorded updates")
	}
	if !s.StartTimer().IsZero() {
		t.Fatal("disabled set started a timer")
	}
	s.SetEnabled(true)
	s.Inc(MessagesSent)
	if s.Get(MessagesSent) != 1 {
		t.Fatal("re-enabled set did not record")
	}
}

func TestMax(t *testing.T) {
	s := NewSet()
	s.Max(UnexpectedQueuePeak, 3)
	s.Max(UnexpectedQueuePeak, 1)
	s.Max(UnexpectedQueuePeak, 7)
	if got := s.Get(UnexpectedQueuePeak); got != 7 {
		t.Fatalf("Max result = %d, want 7", got)
	}
}

func TestMaxConcurrent(t *testing.T) {
	s := NewSet()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.Max(PostedQueuePeak, int64(g*1000+i))
			}
		}(g)
	}
	wg.Wait()
	if got := s.Get(PostedQueuePeak); got != 7999 {
		t.Fatalf("concurrent Max = %d, want 7999", got)
	}
}

func TestReset(t *testing.T) {
	s := NewSet()
	s.Add(MessagesSent, 10)
	s.Add(OutOfSequence, 3)
	s.Reset()
	for c := Counter(0); int(c) < NumCounters; c++ {
		if s.Get(c) != 0 {
			t.Fatalf("counter %v = %d after Reset", c, s.Get(c))
		}
	}
}

func TestTimer(t *testing.T) {
	s := NewSet()
	start := s.StartTimer()
	time.Sleep(2 * time.Millisecond)
	s.StopTimer(MatchTimeNanos, start)
	if got := s.Snapshot().MatchTime(); got < time.Millisecond {
		t.Fatalf("MatchTime = %v, want >= 1ms", got)
	}
}

func TestSnapshotSub(t *testing.T) {
	s := NewSet()
	s.Add(MessagesSent, 10)
	s.Max(PostedQueuePeak, 4)
	before := s.Snapshot()
	s.Add(MessagesSent, 5)
	s.Max(PostedQueuePeak, 6)
	diff := s.Snapshot().Sub(before)
	if diff.Get(MessagesSent) != 5 {
		t.Fatalf("diff messages_sent = %d, want 5", diff.Get(MessagesSent))
	}
	// Peaks carry the absolute value rather than a delta.
	if diff.Get(PostedQueuePeak) != 6 {
		t.Fatalf("diff posted_queue_peak = %d, want 6", diff.Get(PostedQueuePeak))
	}
}

func TestOutOfSequencePercent(t *testing.T) {
	var sn Snapshot
	if sn.OutOfSequencePercent() != 0 {
		t.Fatal("empty snapshot OOS%% non-zero")
	}
	sn[MessagesReceived] = 200
	sn[OutOfSequence] = 50
	if got := sn.OutOfSequencePercent(); got != 25 {
		t.Fatalf("OOS%% = %v, want 25", got)
	}
}

func TestSnapshotString(t *testing.T) {
	s := NewSet()
	s.Add(OutOfSequence, 42)
	out := s.Snapshot().String()
	if !strings.Contains(out, "out_of_sequence") || !strings.Contains(out, "42") {
		t.Fatalf("String() missing counter line: %q", out)
	}
	if strings.Contains(out, "messages_sent") {
		t.Fatalf("String() includes zero counter: %q", out)
	}
}

func TestCounterString(t *testing.T) {
	if OutOfSequence.String() != "out_of_sequence" {
		t.Fatalf("OutOfSequence.String() = %q", OutOfSequence.String())
	}
	if got := Counter(999).String(); !strings.Contains(got, "999") {
		t.Fatalf("unknown counter String() = %q", got)
	}
}

func TestMerge(t *testing.T) {
	var a, b Snapshot
	a[MessagesSent], b[MessagesSent] = 3, 4
	a[UnexpectedQueuePeak], b[UnexpectedQueuePeak] = 9, 5
	m := Merge(a, b)
	if m.Get(MessagesSent) != 7 {
		t.Fatalf("merged messages_sent = %d, want 7", m.Get(MessagesSent))
	}
	if m.Get(UnexpectedQueuePeak) != 9 {
		t.Fatalf("merged peak = %d, want 9 (max)", m.Get(UnexpectedQueuePeak))
	}
}

// TestQuickAddCommutes checks that concurrent Adds from any partition of a
// total always sum to the total (atomicity property).
func TestQuickAddCommutes(t *testing.T) {
	prop := func(parts []uint16) bool {
		s := NewSet()
		var want int64
		var wg sync.WaitGroup
		for _, p := range parts {
			want += int64(p)
			wg.Add(1)
			go func(p int64) {
				defer wg.Done()
				s.Add(MessagesSent, p)
			}(int64(p))
		}
		wg.Wait()
		return s.Get(MessagesSent) == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestCounterByNameRoundtrip checks String/CounterByName are inverses over
// every defined counter, and that unknown names are rejected.
func TestCounterByNameRoundtrip(t *testing.T) {
	for i := 0; i < NumCounters; i++ {
		c := Counter(i)
		got, ok := CounterByName(c.String())
		if !ok || got != c {
			t.Fatalf("CounterByName(%q) = %v, %v; want %v, true", c.String(), got, ok, c)
		}
	}
	if _, ok := CounterByName("no_such_counter"); ok {
		t.Fatal("CounterByName accepted an unknown name")
	}
}

func BenchmarkIncEnabled(b *testing.B) {
	s := NewSet()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Inc(MessagesSent)
	}
}

func BenchmarkIncDisabled(b *testing.B) {
	s := NewSet()
	s.SetEnabled(false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Inc(MessagesSent)
	}
}
