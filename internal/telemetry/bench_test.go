package telemetry

import "testing"

// BenchmarkDisabledHook measures the cost the runtime pays on every timed
// section when telemetry is off: a Start/ObserveSince pair on a nil
// histogram. This must stay at roughly one branch each and zero
// allocations — the acceptance bar for leaving the hooks compiled into
// the hot paths unconditionally.
func BenchmarkDisabledHook(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t0 := h.Start()
		h.ObserveSince(t0)
	}
}

// BenchmarkDisabledObserveNs is the direct-value variant of the disabled
// hook (message-latency path).
func BenchmarkDisabledObserveNs(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.ObserveNs(int64(i))
	}
}

// BenchmarkEnabledObserveNs is the enabled recording cost for comparison:
// a handful of atomic adds.
func BenchmarkEnabledObserveNs(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.ObserveNs(int64(i))
	}
}

// BenchmarkEnabledObserveParallel exercises contended recording.
func BenchmarkEnabledObserveParallel(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		v := int64(0)
		for pb.Next() {
			v++
			h.ObserveNs(v)
		}
	})
}
