package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"repro/internal/prof"
	"repro/internal/trace"
)

// PhasePoint is one instant of a rank's aggregate phase breakdown: the
// cumulative per-phase nanoseconds summed over the rank's profiled threads
// at Elapsed nanoseconds into the run. A series of these renders as a
// Chrome-trace counter track ("ph":"C") — the stacked time-breakdown chart
// directly on the trace timeline.
type PhasePoint struct {
	ElapsedNs int64
	PhaseNs   map[string]int64
}

// PhasePointsFromSamples converts a sampler time series carrying profiler
// snapshots into a counter-track series, dropping samples with no profiler
// data. Phase totals are aggregated across the snapshot's threads.
func PhasePointsFromSamples(samples []Sample) []PhasePoint {
	var out []PhasePoint
	for _, smp := range samples {
		if len(smp.Prof.Threads) == 0 {
			continue
		}
		var totals prof.PhaseTotals
		for _, th := range smp.Prof.Threads {
			totals.Merge(th.Phases)
		}
		out = append(out, PhasePoint{ElapsedNs: int64(smp.Elapsed), PhaseNs: totals.Map()})
	}
	return out
}

// RankEvents pairs one process's rank with its retained trace events, plus
// the clock anchors that let a merger place several ranks' relative
// timestamps on one corrected timeline.
type RankEvents struct {
	Rank   int
	Events []trace.Event
	// Phases, when non-empty, adds a "phase breakdown" counter track to the
	// rank's pid group: one "ph":"C" event per point with the per-phase
	// cumulative nanoseconds as args (Perfetto renders it stacked).
	Phases []PhasePoint
	// BaseUnixNs is the wall-clock instant (UnixNano, local clock) the
	// rank's tracer timestamps are relative to (Tracer.StartUnixNano).
	// Zero means "no anchor": the rank's events are rendered on their raw
	// relative timeline, the single-process behavior.
	BaseUnixNs int64
	// ClockToRank0Ns is the estimated correction that maps this rank's
	// clock onto rank 0's (rank0_time = local_time + ClockToRank0Ns),
	// from the transport's NTP-style handshake samples. Zero for rank 0
	// itself and for in-process worlds sharing one clock.
	ClockToRank0Ns int64
}

// WriteChromeTrace renders one process's retained tracer events as a Chrome
// trace-event JSON array loadable in chrome://tracing or Perfetto. Each
// event becomes a complete ("ph":"X") slice on the thread row of the CRI
// instance it was attributed to (EmitCRI); unattributed events land on the
// shared row 0. Timestamps are microseconds since tracer creation, per the
// format spec.
//
// pid groups the process's rows; pass the proc's rank. Metadata records
// name the rows so the Perfetto timeline reads "cri-K" directly.
func WriteChromeTrace(w io.Writer, pid int, events []trace.Event) error {
	return WriteChromeTraceRanks(w, []RankEvents{{Rank: pid, Events: events}})
}

// WriteChromeTraceRanks renders several processes' traces into one Chrome
// trace-event JSON file, one pid group per rank (see WriteChromeTrace).
//
// When the RankEvents carry clock anchors (BaseUnixNs != 0), every rank's
// timestamps are corrected onto rank 0's clock and shifted to a common
// origin, so cross-rank causality reads directly off the merged timeline.
// Events sharing a non-zero Flow id are additionally linked with Chrome
// flow arrows ("ph":"s"/"t"/"f") — the send→deliver→match arc of one traced
// message across ranks.
func WriteChromeTraceRanks(w io.Writer, procs []RankEvents) error {
	// Common origin: the earliest corrected base across anchored ranks.
	// Unanchored ranks (base 0) keep their raw relative timeline.
	var origin int64
	haveOrigin := false
	for _, pr := range procs {
		if pr.BaseUnixNs == 0 {
			continue
		}
		base := pr.BaseUnixNs + pr.ClockToRank0Ns
		if !haveOrigin || base < origin {
			origin, haveOrigin = base, true
		}
	}
	corrected := func(pr RankEvents, e trace.Event) int64 {
		if pr.BaseUnixNs == 0 {
			return e.TS
		}
		return e.TS + pr.BaseUnixNs + pr.ClockToRank0Ns - origin
	}

	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("[\n"); err != nil {
		return err
	}
	first := true
	emit := func(s string) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		bw.WriteString(s)
	}

	// Flow bookkeeping: every event carrying a flow id, in corrected-time
	// order, becomes one hop of a flow arrow chain.
	type flowHop struct {
		ts       int64
		seq      uint64
		pid, tid int
	}
	flows := map[uint64][]flowHop{}

	for _, pr := range procs {
		pid := pr.Rank
		emit(fmt.Sprintf(`{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":"rank %d"}}`, pid, pid))
		rows := map[int16]bool{}
		unattributed := false
		for _, e := range pr.Events {
			if e.CRI < 0 {
				unattributed = true
			} else if !rows[e.CRI] {
				rows[e.CRI] = true
				emit(fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":"cri-%d"}}`,
					pid, e.CRI+1, e.CRI))
			}
		}
		if unattributed {
			emit(fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":%d,"tid":0,"args":{"name":"unattributed"}}`, pid))
		}
		for _, e := range pr.Events {
			tid := 0
			cri := -1
			if e.CRI >= 0 {
				tid = int(e.CRI) + 1
				cri = int(e.CRI)
			}
			ts := corrected(pr, e)
			emit(fmt.Sprintf(
				`{"name":%q,"cat":"mpi","ph":"X","ts":%.3f,"dur":1,"pid":%d,"tid":%d,"args":{"seq":%d,"arg0":%d,"arg1":%d,"cri":%d,"flow":%d}}`,
				e.Kind.String(), float64(ts)/1e3, pid, tid, e.Seq, e.Arg0, e.Arg1, cri, e.Flow))
			if e.Flow != 0 {
				flows[e.Flow] = append(flows[e.Flow], flowHop{ts: ts, seq: e.Seq, pid: pid, tid: tid})
			}
		}
		// The phase-breakdown counter track: one "ph":"C" event per sampler
		// point, args keyed by phase name in sorted order so the output is
		// deterministic. Counter timestamps are run-relative (sampler clock),
		// matching the unanchored event timeline.
		for _, pp := range pr.Phases {
			keys := make([]string, 0, len(pp.PhaseNs))
			for k := range pp.PhaseNs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			var args []byte
			for i, k := range keys {
				if i > 0 {
					args = append(args, ',')
				}
				args = append(args, fmt.Sprintf("%q:%d", k, pp.PhaseNs[k])...)
			}
			emit(fmt.Sprintf(
				`{"name":"phase breakdown","cat":"mpi-prof","ph":"C","ts":%.3f,"pid":%d,"tid":0,"args":{%s}}`,
				float64(pp.ElapsedNs)/1e3, pid, args))
		}
	}

	flowIDs := make([]uint64, 0, len(flows))
	for id := range flows {
		flowIDs = append(flowIDs, id)
	}
	sort.Slice(flowIDs, func(i, j int) bool { return flowIDs[i] < flowIDs[j] })
	for _, id := range flowIDs {
		hops := flows[id]
		if len(hops) < 2 {
			continue
		}
		sort.Slice(hops, func(i, j int) bool {
			if hops[i].ts != hops[j].ts {
				return hops[i].ts < hops[j].ts
			}
			return hops[i].seq < hops[j].seq
		})
		for i, h := range hops {
			ph := "t"
			extra := ""
			switch i {
			case 0:
				ph = "s"
			case len(hops) - 1:
				ph = "f"
				extra = `,"bp":"e"`
			}
			emit(fmt.Sprintf(
				`{"name":"msg","cat":"mpi-flow","ph":%q,"id":%d,"ts":%.3f,"pid":%d,"tid":%d%s}`,
				ph, id, float64(h.ts)/1e3, h.pid, h.tid, extra))
		}
	}

	if _, err := bw.WriteString("\n]\n"); err != nil {
		return err
	}
	return bw.Flush()
}
