package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"repro/internal/trace"
)

// RankEvents pairs one process's rank with its retained trace events, plus
// the clock anchors that let a merger place several ranks' relative
// timestamps on one corrected timeline.
type RankEvents struct {
	Rank   int
	Events []trace.Event
	// BaseUnixNs is the wall-clock instant (UnixNano, local clock) the
	// rank's tracer timestamps are relative to (Tracer.StartUnixNano).
	// Zero means "no anchor": the rank's events are rendered on their raw
	// relative timeline, the single-process behavior.
	BaseUnixNs int64
	// ClockToRank0Ns is the estimated correction that maps this rank's
	// clock onto rank 0's (rank0_time = local_time + ClockToRank0Ns),
	// from the transport's NTP-style handshake samples. Zero for rank 0
	// itself and for in-process worlds sharing one clock.
	ClockToRank0Ns int64
}

// WriteChromeTrace renders one process's retained tracer events as a Chrome
// trace-event JSON array loadable in chrome://tracing or Perfetto. Each
// event becomes a complete ("ph":"X") slice on the thread row of the CRI
// instance it was attributed to (EmitCRI); unattributed events land on the
// shared row 0. Timestamps are microseconds since tracer creation, per the
// format spec.
//
// pid groups the process's rows; pass the proc's rank. Metadata records
// name the rows so the Perfetto timeline reads "cri-K" directly.
func WriteChromeTrace(w io.Writer, pid int, events []trace.Event) error {
	return WriteChromeTraceRanks(w, []RankEvents{{Rank: pid, Events: events}})
}

// WriteChromeTraceRanks renders several processes' traces into one Chrome
// trace-event JSON file, one pid group per rank (see WriteChromeTrace).
//
// When the RankEvents carry clock anchors (BaseUnixNs != 0), every rank's
// timestamps are corrected onto rank 0's clock and shifted to a common
// origin, so cross-rank causality reads directly off the merged timeline.
// Events sharing a non-zero Flow id are additionally linked with Chrome
// flow arrows ("ph":"s"/"t"/"f") — the send→deliver→match arc of one traced
// message across ranks.
func WriteChromeTraceRanks(w io.Writer, procs []RankEvents) error {
	// Common origin: the earliest corrected base across anchored ranks.
	// Unanchored ranks (base 0) keep their raw relative timeline.
	var origin int64
	haveOrigin := false
	for _, pr := range procs {
		if pr.BaseUnixNs == 0 {
			continue
		}
		base := pr.BaseUnixNs + pr.ClockToRank0Ns
		if !haveOrigin || base < origin {
			origin, haveOrigin = base, true
		}
	}
	corrected := func(pr RankEvents, e trace.Event) int64 {
		if pr.BaseUnixNs == 0 {
			return e.TS
		}
		return e.TS + pr.BaseUnixNs + pr.ClockToRank0Ns - origin
	}

	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("[\n"); err != nil {
		return err
	}
	first := true
	emit := func(s string) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		bw.WriteString(s)
	}

	// Flow bookkeeping: every event carrying a flow id, in corrected-time
	// order, becomes one hop of a flow arrow chain.
	type flowHop struct {
		ts       int64
		seq      uint64
		pid, tid int
	}
	flows := map[uint64][]flowHop{}

	for _, pr := range procs {
		pid := pr.Rank
		emit(fmt.Sprintf(`{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":"rank %d"}}`, pid, pid))
		rows := map[int16]bool{}
		unattributed := false
		for _, e := range pr.Events {
			if e.CRI < 0 {
				unattributed = true
			} else if !rows[e.CRI] {
				rows[e.CRI] = true
				emit(fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":"cri-%d"}}`,
					pid, e.CRI+1, e.CRI))
			}
		}
		if unattributed {
			emit(fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":%d,"tid":0,"args":{"name":"unattributed"}}`, pid))
		}
		for _, e := range pr.Events {
			tid := 0
			cri := -1
			if e.CRI >= 0 {
				tid = int(e.CRI) + 1
				cri = int(e.CRI)
			}
			ts := corrected(pr, e)
			emit(fmt.Sprintf(
				`{"name":%q,"cat":"mpi","ph":"X","ts":%.3f,"dur":1,"pid":%d,"tid":%d,"args":{"seq":%d,"arg0":%d,"arg1":%d,"cri":%d,"flow":%d}}`,
				e.Kind.String(), float64(ts)/1e3, pid, tid, e.Seq, e.Arg0, e.Arg1, cri, e.Flow))
			if e.Flow != 0 {
				flows[e.Flow] = append(flows[e.Flow], flowHop{ts: ts, seq: e.Seq, pid: pid, tid: tid})
			}
		}
	}

	flowIDs := make([]uint64, 0, len(flows))
	for id := range flows {
		flowIDs = append(flowIDs, id)
	}
	sort.Slice(flowIDs, func(i, j int) bool { return flowIDs[i] < flowIDs[j] })
	for _, id := range flowIDs {
		hops := flows[id]
		if len(hops) < 2 {
			continue
		}
		sort.Slice(hops, func(i, j int) bool {
			if hops[i].ts != hops[j].ts {
				return hops[i].ts < hops[j].ts
			}
			return hops[i].seq < hops[j].seq
		})
		for i, h := range hops {
			ph := "t"
			extra := ""
			switch i {
			case 0:
				ph = "s"
			case len(hops) - 1:
				ph = "f"
				extra = `,"bp":"e"`
			}
			emit(fmt.Sprintf(
				`{"name":"msg","cat":"mpi-flow","ph":%q,"id":%d,"ts":%.3f,"pid":%d,"tid":%d%s}`,
				ph, id, float64(h.ts)/1e3, h.pid, h.tid, extra))
		}
	}

	if _, err := bw.WriteString("\n]\n"); err != nil {
		return err
	}
	return bw.Flush()
}
