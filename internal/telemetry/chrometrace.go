package telemetry

import (
	"bufio"
	"fmt"
	"io"

	"repro/internal/trace"
)

// RankEvents pairs one process's rank with its retained trace events.
type RankEvents struct {
	Rank   int
	Events []trace.Event
}

// WriteChromeTrace renders one process's retained tracer events as a Chrome
// trace-event JSON array loadable in chrome://tracing or Perfetto. Each
// event becomes a complete ("ph":"X") slice on the thread row of the CRI
// instance it was attributed to (EmitCRI); unattributed events land on the
// shared row 0. Timestamps are microseconds since tracer creation, per the
// format spec.
//
// pid groups the process's rows; pass the proc's rank. Metadata records
// name the rows so the Perfetto timeline reads "cri-K" directly.
func WriteChromeTrace(w io.Writer, pid int, events []trace.Event) error {
	return WriteChromeTraceRanks(w, []RankEvents{{Rank: pid, Events: events}})
}

// WriteChromeTraceRanks renders several processes' traces into one Chrome
// trace-event JSON file, one pid group per rank (see WriteChromeTrace).
func WriteChromeTraceRanks(w io.Writer, procs []RankEvents) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("[\n"); err != nil {
		return err
	}
	first := true
	emit := func(s string) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		bw.WriteString(s)
	}

	for _, pr := range procs {
		pid := pr.Rank
		emit(fmt.Sprintf(`{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":"rank %d"}}`, pid, pid))
		rows := map[int16]bool{}
		unattributed := false
		for _, e := range pr.Events {
			if e.CRI < 0 {
				unattributed = true
			} else if !rows[e.CRI] {
				rows[e.CRI] = true
				emit(fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":"cri-%d"}}`,
					pid, e.CRI+1, e.CRI))
			}
		}
		if unattributed {
			emit(fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":%d,"tid":0,"args":{"name":"unattributed"}}`, pid))
		}
		for _, e := range pr.Events {
			tid := 0
			cri := -1
			if e.CRI >= 0 {
				tid = int(e.CRI) + 1
				cri = int(e.CRI)
			}
			emit(fmt.Sprintf(
				`{"name":%q,"cat":"mpi","ph":"X","ts":%.3f,"dur":1,"pid":%d,"tid":%d,"args":{"seq":%d,"arg0":%d,"arg1":%d,"cri":%d}}`,
				e.Kind.String(), float64(e.TS)/1e3, pid, tid, e.Seq, e.Arg0, e.Arg1, cri))
		}
	}
	if _, err := bw.WriteString("\n]\n"); err != nil {
		return err
	}
	return bw.Flush()
}
