package telemetry

import (
	"encoding/json"
	"strconv"
	"strings"
	"testing"

	"repro/internal/prof"
	"repro/internal/spc"
	"repro/internal/trace"
)

func testStats() ProcStats {
	var cri0, cri1, comm7, residual spc.Snapshot
	cri0[spc.SendLockWaits] = 3
	cri1[spc.SendLockWaits] = 2
	comm7[spc.MessagesSent] = 40
	comm7[spc.MessagesReceived] = 40
	residual[spc.ProgressCalls] = 11
	h := NewHistogram()
	h.ObserveNs(10)
	h.ObserveNs(10)
	h.ObserveNs(3000)
	ps := ProcStats{
		Rank:     1,
		PerCRI:   []CRIStat{{Index: 1, Counters: cri1}, {Index: 0, Counters: cri0}},
		PerComm:  []CommStat{{ID: 7, Counters: comm7}},
		Residual: residual,
		Hists:    []NamedHist{{HistMatchSection, h.Snapshot()}},
	}
	ps.Process = ps.MergeChildren()
	return ps
}

func TestWritePrometheusGolden(t *testing.T) {
	var sb strings.Builder
	if err := WritePrometheus(&sb, testStats()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// Exact lines the exposition must contain: process totals, attributed
	// scopes, and a consistent histogram family.
	want := []string{
		`# TYPE mpi_spc_messages_sent counter`,
		`mpi_spc_messages_sent{rank="1",scope="process"} 40`,
		`mpi_spc_messages_sent{rank="1",scope="comm",comm="7"} 40`,
		`mpi_spc_send_lock_waits{rank="1",scope="process"} 5`,
		`mpi_spc_send_lock_waits{rank="1",scope="cri",cri="0"} 3`,
		`mpi_spc_send_lock_waits{rank="1",scope="cri",cri="1"} 2`,
		`mpi_spc_progress_calls{rank="1",scope="process"} 11`,
		`# TYPE mpi_match_section_ns histogram`,
		`mpi_match_section_ns_bucket{rank="1",le="+Inf"} 3`,
		`mpi_match_section_ns_sum{rank="1"} 3020`,
		`mpi_match_section_ns_count{rank="1"} 3`,
	}
	for _, w := range want {
		if !strings.Contains(out, w+"\n") {
			t.Errorf("prometheus output missing line %q\n--- got ---\n%s", w, out)
		}
	}
	// Zero-valued attributed scopes must not be emitted.
	if strings.Contains(out, `mpi_spc_messages_sent{rank="1",scope="cri"`) {
		t.Error("zero per-CRI messages_sent emitted")
	}
}

func TestPrometheusHistogramInvariants(t *testing.T) {
	// The +Inf bucket must equal _count for every histogram series, and
	// cumulative buckets must be non-decreasing — the invariants any
	// Prometheus consumer assumes.
	var sb strings.Builder
	if err := WritePrometheus(&sb, testStats()); err != nil {
		t.Fatal(err)
	}
	inf := map[string]int64{}
	count := map[string]int64{}
	last := map[string]int64{}
	for _, line := range strings.Split(sb.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := line[:strings.IndexAny(line, "{ ")]
		val, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("unparseable sample line %q: %v", line, err)
		}
		switch {
		case strings.HasSuffix(name, "_bucket") && strings.Contains(line, `le="+Inf"`):
			inf[name] = val
		case strings.HasSuffix(name, "_bucket"):
			if val < last[name] {
				t.Errorf("cumulative bucket decreased in %q", line)
			}
			last[name] = val
		case strings.HasSuffix(name, "_count"):
			count[strings.TrimSuffix(name, "_count")+"_bucket"] = val
		}
	}
	if len(inf) == 0 {
		t.Fatal("no +Inf buckets found")
	}
	for name, v := range inf {
		if count[name] != v {
			t.Errorf("%s: +Inf bucket %d != _count %d", name, v, count[name])
		}
	}
}

// TestPrometheusRankLabelContract asserts the aggregation-safety contract
// the cluster plane depends on: every sample line the exporter emits —
// counters, histograms, and the contention-profiler families — carries a
// rank label, so per-rank series from different processes never collide
// when concatenated into one merged exposition.
func TestPrometheusRankLabelContract(t *testing.T) {
	ps := testStats()
	ps.Prof = prof.Snapshot{
		Sites: []prof.SiteSnapshot{{Name: "match.comm", Comm: 7, Acquisitions: 4, Contended: 1, WaitNs: 900, HoldNs: 1200}},
		Threads: []prof.ThreadSnapshot{{
			Label: "send-0", WallNs: 5000,
			PhaseNs: map[string]int64{"app": 1000, "send": 4000},
		}},
	}
	ps2 := testStats()
	ps2.Rank = 2
	var sb strings.Builder
	if err := WritePrometheus(&sb, ps, ps2); err != nil {
		t.Fatal(err)
	}
	ranks := map[string]bool{}
	for _, line := range strings.Split(sb.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.Index(line, `rank="`)
		if i < 0 {
			t.Errorf("sample line without rank label: %q", line)
			continue
		}
		rest := line[i+len(`rank="`):]
		ranks[rest[:strings.IndexByte(rest, '"')]] = true
	}
	if !ranks["1"] || !ranks["2"] {
		t.Fatalf("expected series for ranks 1 and 2, saw %v", ranks)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	events := []trace.Event{
		{TS: 1000, Seq: 1, Kind: trace.KindSendInject, CRI: 0, Arg0: 1, Arg1: 0},
		{TS: 2500, Seq: 2, Kind: trace.KindSendInject, CRI: 2, Arg0: 1, Arg1: 1},
		{TS: 3000, Seq: 3, Kind: trace.KindMatchComplete, CRI: -1, Arg0: 0, Arg1: 9},
	}
	var sb strings.Builder
	if err := WriteChromeTrace(&sb, 4, events); err != nil {
		t.Fatal(err)
	}
	var parsed []map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &parsed); err != nil {
		t.Fatalf("trace output is not valid JSON: %v\n%s", err, sb.String())
	}
	var meta, slices int
	threadNames := map[float64]string{}
	for _, e := range parsed {
		switch e["ph"] {
		case "M":
			meta++
			if e["name"] == "thread_name" {
				threadNames[e["tid"].(float64)] = e["args"].(map[string]any)["name"].(string)
			}
		case "X":
			slices++
			if e["pid"].(float64) != 4 {
				t.Errorf("slice pid = %v, want 4", e["pid"])
			}
			args := e["args"].(map[string]any)
			cri := args["cri"].(float64)
			if cri >= 0 && e["tid"].(float64) != cri+1 {
				t.Errorf("attributed slice tid %v != cri+1 (%v)", e["tid"], cri+1)
			}
			if cri < 0 && e["tid"].(float64) != 0 {
				t.Errorf("unattributed slice tid %v, want 0", e["tid"])
			}
		default:
			t.Errorf("unexpected phase %v", e["ph"])
		}
	}
	if slices != len(events) {
		t.Fatalf("%d slices, want %d", slices, len(events))
	}
	// One process_name + rows for cri-0, cri-2, and the unattributed event.
	if meta != 4 {
		t.Fatalf("%d metadata records, want 4", meta)
	}
	if threadNames[1] != "cri-0" || threadNames[3] != "cri-2" || threadNames[0] != "unattributed" {
		t.Fatalf("thread rows misnamed: %v", threadNames)
	}
	// The second event's timestamp must be microseconds (2500 ns = 2.5 µs).
	if !strings.Contains(sb.String(), `"ts":2.500`) {
		t.Error("timestamps not converted to microseconds")
	}
}

func TestProcStatsWriteText(t *testing.T) {
	var sb strings.Builder
	if err := testStats().WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, w := range []string{"rank 1 process totals:", "cri 0:", "cri 1:", "comm 7:", "residual:", "hist match_section_ns"} {
		if !strings.Contains(out, w) {
			t.Errorf("WriteText missing %q\n%s", w, out)
		}
	}
}
