// Package telemetry is the runtime's observability layer: lock-free
// latency histograms, per-CRI and per-communicator counter attribution,
// a background sampler producing an in-memory time series, and exporters
// for the Prometheus text format and the Chrome trace-event JSON format.
//
// Everything follows the spc/trace discipline: a nil receiver is valid and
// every hot-path hook degrades to a single predictable branch when
// telemetry is disabled, so call sites need no guards.
package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// NumBuckets is the number of histogram buckets. The layout is log-linear:
// two linear sub-buckets per power of two, covering 1 ns up to ~6.4 s
// (2^32 · 1.5 ns), with larger values clamped into the last bucket. The
// relative error of any quantile estimate is therefore bounded by the
// sub-bucket width: at most 50% of the true value.
const NumBuckets = 64

// bucketIndex maps a nanosecond observation to its bucket.
func bucketIndex(v int64) int {
	if v <= 1 {
		return 0
	}
	u := uint64(v)
	e := bits.Len64(u) - 1           // floor(log2(v)), >= 1
	sub := int((u >> uint(e-1)) & 1) // which half of the octave
	idx := 2*e + sub - 1
	if idx >= NumBuckets {
		return NumBuckets - 1
	}
	return idx
}

// BucketUpper returns the largest nanosecond value bucket i holds. The last
// bucket is open-ended; its nominal bound is returned (exporters render it
// as +Inf).
func BucketUpper(i int) int64 {
	if i <= 0 {
		return 1
	}
	e := uint((i + 1) / 2)
	if (i+1)%2 == 0 { // first half of the octave: [2^e, 1.5·2^e)
		return int64(1)<<e + int64(1)<<(e-1) - 1
	}
	return int64(1)<<(e+1) - 1 // second half: [1.5·2^e, 2^(e+1))
}

// Histogram is a lock-free log-linear latency histogram. Recording is one
// atomic add per bucket plus count/sum updates; there is no lock anywhere.
// All methods are safe for concurrent use, and a nil *Histogram ignores
// every call, so hot paths need exactly one branch.
type Histogram struct {
	buckets [NumBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// ObserveNs records one observation in nanoseconds. Negative values clamp
// to zero.
func (h *Histogram) ObserveNs(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) { h.ObserveNs(int64(d)) }

// Start returns the current time, or the zero time on a nil histogram.
// Pair with ObserveSince around a timed section; the disabled path costs
// one branch and never reads the clock.
func (h *Histogram) Start() time.Time {
	if h == nil {
		return time.Time{}
	}
	return time.Now()
}

// ObserveSince records the elapsed time since start. A zero start (from a
// disabled Start) is ignored.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil || start.IsZero() {
		return
	}
	h.ObserveNs(int64(time.Since(start)))
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Snapshot copies the histogram state. The copy is not atomic across
// buckets (recording continues concurrently), but every recorded event is
// eventually visible and bucket counts never decrease, which is all the
// mergeable-snapshot contract requires.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	// Recording between the bucket loop and the count load can make Count
	// exceed the bucket sum; clamp so cumulative exports stay consistent.
	var bs int64
	for _, b := range s.Buckets {
		bs += b
	}
	if s.Count > bs {
		s.Count = bs
	}
	return s
}

// HistSnapshot is an immutable copy of a histogram.
type HistSnapshot struct {
	Buckets [NumBuckets]int64
	Count   int64
	Sum     int64
	Max     int64
}

// Merge returns the element-wise sum of the snapshots (max of maxes).
func (s HistSnapshot) Merge(o HistSnapshot) HistSnapshot {
	out := s
	for i, b := range o.Buckets {
		out.Buckets[i] += b
	}
	out.Count += o.Count
	out.Sum += o.Sum
	if o.Max > out.Max {
		out.Max = o.Max
	}
	return out
}

// Mean returns the average observation in nanoseconds, or 0 when empty.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile estimates the q-quantile (q in [0, 1]) in nanoseconds: the
// upper bound of the bucket holding the rank-⌈q·count⌉ observation,
// clamped to the exact recorded maximum. Returns 0 when empty.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, b := range s.Buckets {
		cum += b
		if cum >= rank {
			u := BucketUpper(i)
			if u > s.Max {
				return s.Max
			}
			return u
		}
	}
	return s.Max
}

// P50 is Quantile(0.50).
func (s HistSnapshot) P50() int64 { return s.Quantile(0.50) }

// P90 is Quantile(0.90).
func (s HistSnapshot) P90() int64 { return s.Quantile(0.90) }

// P99 is Quantile(0.99).
func (s HistSnapshot) P99() int64 { return s.Quantile(0.99) }
