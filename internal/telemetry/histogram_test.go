package telemetry

import (
	"sort"
	"sync"
	"testing"
	"time"
)

// lcg is a tiny deterministic generator so quantile tests are reproducible
// without seeding math/rand.
type lcg uint64

func (r *lcg) next() uint64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return uint64(*r)
}

func TestBucketIndexUpperConsistency(t *testing.T) {
	// Every value must land in a bucket whose upper bound covers it, and
	// bucket uppers must be strictly increasing.
	values := []int64{0, 1, 2, 3, 4, 5, 7, 8, 100, 1023, 1024, 1536, 1 << 20, 1<<40 + 17, 1 << 62}
	for _, v := range values {
		i := bucketIndex(v)
		if i < 0 || i >= NumBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, i)
		}
		if i < NumBuckets-1 && v > BucketUpper(i) {
			t.Fatalf("value %d exceeds BucketUpper(%d) = %d", v, i, BucketUpper(i))
		}
		if i > 0 && v <= BucketUpper(i-1) {
			t.Fatalf("value %d also fits bucket %d (upper %d)", v, i-1, BucketUpper(i-1))
		}
	}
	for i := 1; i < NumBuckets; i++ {
		if BucketUpper(i) <= BucketUpper(i-1) {
			t.Fatalf("BucketUpper not increasing at %d: %d <= %d", i, BucketUpper(i), BucketUpper(i-1))
		}
	}
	// Round trip: each bucket's upper bound must map back to that bucket.
	for i := 0; i < NumBuckets-1; i++ {
		if got := bucketIndex(BucketUpper(i)); got != i {
			t.Fatalf("bucketIndex(BucketUpper(%d)=%d) = %d", i, BucketUpper(i), got)
		}
	}
}

func TestQuantileAgainstSortedReference(t *testing.T) {
	// Record pseudo-random latencies spanning several octaves and compare
	// the histogram's quantile estimates against the exact sorted values.
	// The log-linear layout guarantees estimate ∈ [exact, 2·exact].
	h := NewHistogram()
	var r lcg = 42
	const n = 10000
	vals := make([]int64, n)
	for i := range vals {
		v := int64(r.next() % (1 << (10 + r.next()%20))) // 0 .. ~2^30 ns
		vals[i] = v
		h.ObserveNs(v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	s := h.Snapshot()
	if s.Count != n {
		t.Fatalf("count = %d, want %d", s.Count, n)
	}
	if s.Max != vals[n-1] {
		t.Fatalf("max = %d, want %d", s.Max, vals[n-1])
	}
	for _, q := range []float64{0.01, 0.25, 0.50, 0.90, 0.99, 1.0} {
		rank := int(q*n+0.5) - 1
		if rank < 0 {
			rank = 0
		}
		exact := vals[rank]
		est := s.Quantile(q)
		if est < exact {
			t.Errorf("q=%v: estimate %d below exact %d", q, est, exact)
		}
		if est > 2*exact+2 {
			t.Errorf("q=%v: estimate %d exceeds 2x exact %d", q, est, exact)
		}
	}
	if s.P50() != s.Quantile(0.50) || s.P90() != s.Quantile(0.90) || s.P99() != s.Quantile(0.99) {
		t.Fatal("P50/P90/P99 disagree with Quantile")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	// Hammer one histogram from many goroutines (run under -race) and check
	// that no observation is lost and the aggregates are exact.
	h := NewHistogram()
	const goroutines, per = 8, 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.ObserveNs(int64(g*per + i))
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	total := int64(goroutines * per)
	if s.Count != total {
		t.Fatalf("count = %d, want %d", s.Count, total)
	}
	var bucketSum, wantSum int64
	for _, b := range s.Buckets {
		bucketSum += b
	}
	if bucketSum != total {
		t.Fatalf("bucket sum = %d, want %d", bucketSum, total)
	}
	wantSum = total * (total - 1) / 2
	if s.Sum != wantSum {
		t.Fatalf("sum = %d, want %d", s.Sum, wantSum)
	}
	if s.Max != total-1 {
		t.Fatalf("max = %d, want %d", s.Max, total-1)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	a.ObserveNs(10)
	a.ObserveNs(1000)
	b.ObserveNs(100)
	b.ObserveNs(1 << 20)
	m := a.Snapshot().Merge(b.Snapshot())
	if m.Count != 4 {
		t.Fatalf("merged count = %d, want 4", m.Count)
	}
	if m.Sum != 10+1000+100+1<<20 {
		t.Fatalf("merged sum = %d", m.Sum)
	}
	if m.Max != 1<<20 {
		t.Fatalf("merged max = %d", m.Max)
	}
	var bs int64
	for _, v := range m.Buckets {
		bs += v
	}
	if bs != 4 {
		t.Fatalf("merged bucket sum = %d", bs)
	}
}

func TestNilHistogram(t *testing.T) {
	// The disabled path: every method on a nil histogram is a no-op and
	// Start never reads the clock.
	var h *Histogram
	h.ObserveNs(5)
	h.Observe(time.Second)
	start := h.Start()
	if !start.IsZero() {
		t.Fatal("nil Start returned non-zero time")
	}
	h.ObserveSince(start)
	h.ObserveSince(time.Now())
	if h.Count() != 0 {
		t.Fatal("nil Count non-zero")
	}
	s := h.Snapshot()
	if s.Count != 0 || s.Quantile(0.5) != 0 || s.Mean() != 0 {
		t.Fatal("nil snapshot not empty")
	}
}

func TestObserveNegativeClamps(t *testing.T) {
	h := NewHistogram()
	h.ObserveNs(-17)
	s := h.Snapshot()
	if s.Count != 1 || s.Sum != 0 || s.Buckets[0] != 1 {
		t.Fatalf("negative observation mishandled: %+v", s)
	}
}

func TestObserveSinceRecords(t *testing.T) {
	h := NewHistogram()
	h.ObserveSince(h.Start())
	if h.Count() != 1 {
		t.Fatalf("count = %d, want 1", h.Count())
	}
}
