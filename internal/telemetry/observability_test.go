package telemetry

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/trace"
)

func TestEscapeLabel(t *testing.T) {
	cases := []struct{ in, want string }{
		{`plain`, `plain`},
		{`a"b`, `a\"b`},
		{`back\slash`, `back\\slash`},
		{"line\nbreak", `line\nbreak`},
		{"\\\"\n", `\\\"\n`},
		{``, ``},
	}
	for _, c := range cases {
		if got := escapeLabel(c.in); got != c.want {
			t.Errorf("escapeLabel(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestWritePrometheusInfo(t *testing.T) {
	var sb strings.Builder
	err := WritePrometheusInfo(&sb, "mpi_build_info", map[string]string{
		"transport": "tcp",
		"caps":      "lossless",
		"design":    `odd "name"` + "\n",
	})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	want := `mpi_build_info{caps="lossless",design="odd \"name\"\n",transport="tcp"} 1` + "\n"
	if !strings.Contains(out, want) {
		t.Fatalf("info gauge wrong:\n got %q\nwant substring %q", out, want)
	}
	if !strings.Contains(out, "# TYPE mpi_build_info gauge\n") {
		t.Fatalf("missing TYPE line:\n%s", out)
	}
}

func TestBucketBoundaries(t *testing.T) {
	// Every observation must land in a bucket whose upper bound is >= the
	// value, and the previous bucket's bound (if any) must be < the value —
	// the log-linear layout contract quantile estimation rests on.
	values := []int64{0, 1, 2, 3, 4, 5, 6, 7, 8, 11, 12, 13, 23, 24, 25,
		1<<20 - 1, 1 << 20, 1<<20 + 1, 3 << 20, 1 << 40}
	for _, v := range values {
		i := bucketIndex(v)
		if up := BucketUpper(i); up < v && i != NumBuckets-1 {
			t.Errorf("value %d: bucket %d upper bound %d < value", v, i, up)
		}
		if i > 0 {
			if prev := BucketUpper(i - 1); prev >= v {
				t.Errorf("value %d: previous bucket %d upper bound %d >= value", v, i-1, prev)
			}
		}
	}
	// Exact boundary values: BucketUpper(i) must itself map to bucket i
	// (upper bounds are inclusive), and BucketUpper(i)+1 to bucket i+1.
	for i := 0; i < NumBuckets-1; i++ {
		up := BucketUpper(i)
		if got := bucketIndex(up); got != i {
			t.Errorf("BucketUpper(%d)=%d maps to bucket %d", i, up, got)
		}
		if got := bucketIndex(up + 1); got != i+1 {
			t.Errorf("BucketUpper(%d)+1=%d maps to bucket %d, want %d", i, up+1, got, i+1)
		}
	}
	// Oversized values clamp into the last bucket instead of overflowing.
	if got := bucketIndex(1 << 62); got != NumBuckets-1 {
		t.Errorf("huge value maps to bucket %d, want %d", got, NumBuckets-1)
	}
	// Upper bounds must be strictly increasing.
	for i := 1; i < NumBuckets; i++ {
		if BucketUpper(i) <= BucketUpper(i-1) {
			t.Errorf("BucketUpper not increasing at %d: %d <= %d", i, BucketUpper(i), BucketUpper(i-1))
		}
	}
}

func TestTraceShardRoundTrip(t *testing.T) {
	re := RankEvents{
		Rank:           3,
		BaseUnixNs:     1_700_000_000_000_000_000,
		ClockToRank0Ns: -12_345,
		Events: []trace.Event{
			{TS: 10, Seq: 1, Flow: 0xabc, Kind: trace.KindSendInject, CRI: 2, Arg0: 1, Arg1: 7},
			{TS: 20, Seq: 2, Kind: trace.KindProgress, CRI: -1, Arg0: 4},
		},
	}
	var sb strings.Builder
	if err := WriteTraceShard(&sb, re); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTraceShard(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Rank != re.Rank || got.BaseUnixNs != re.BaseUnixNs || got.ClockToRank0Ns != re.ClockToRank0Ns {
		t.Fatalf("anchors lost: %+v", got)
	}
	if len(got.Events) != 2 || got.Events[0] != re.Events[0] || got.Events[1] != re.Events[1] {
		t.Fatalf("events lost: %+v", got.Events)
	}
	// Version mismatch must be rejected, not silently misread.
	bad := strings.Replace(sb.String(), `"version":1`, `"version":99`, 1)
	if _, err := ReadTraceShard(strings.NewReader(bad)); err == nil {
		t.Fatal("future shard version accepted")
	}
}

func TestChromeTraceMergeCausality(t *testing.T) {
	// Rank 1's clock runs 1ms ahead of rank 0's. On raw timestamps the
	// receive would appear to precede the send; after correction the merged
	// trace must order send < deliver and link them with one flow arrow.
	const flowID = 0x1_0003_0000_0005
	send := RankEvents{
		Rank:           1,
		BaseUnixNs:     2_000_000_000, // rank-1 clock
		ClockToRank0Ns: -1_000_000,    // rank-1 is 1ms ahead of rank 0
		Events: []trace.Event{
			{TS: 500_000, Seq: 1, Flow: flowID, Kind: trace.KindSendInject, CRI: 0, Arg0: 0, Arg1: 5},
		},
	}
	recv := RankEvents{
		Rank:       0,
		BaseUnixNs: 2_000_000_000, // same nominal base, true clock 1ms behind
		Events: []trace.Event{
			// Arrived 100µs (true time) after the send: raw TS appears older
			// than the sender's because of the skew.
			{TS: 500_000 - 1_000_000 + 100_000, Seq: 9, Flow: flowID, Kind: trace.KindRecvDeliver, CRI: 1, Arg0: 1, Arg1: 5},
			{TS: 500_000 - 1_000_000 + 150_000, Seq: 10, Flow: flowID, Kind: trace.KindMatchComplete, CRI: 1, Arg0: 1, Arg1: 0},
		},
	}
	var sb strings.Builder
	if err := WriteChromeTraceRanks(&sb, []RankEvents{recv, send}); err != nil {
		t.Fatal(err)
	}
	var parsed []map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &parsed); err != nil {
		t.Fatalf("merged trace is not valid JSON: %v\n%s", err, sb.String())
	}
	ts := map[string]float64{}
	var flowPhases []string
	for _, e := range parsed {
		switch e["ph"] {
		case "X":
			ts[e["name"].(string)] = e["ts"].(float64)
		case "s", "t", "f":
			flowPhases = append(flowPhases, e["ph"].(string))
			if got := e["id"].(float64); got != float64(flowID) {
				t.Errorf("flow id = %v, want %d", got, flowID)
			}
		}
	}
	sendTS, deliverTS, matchTS := ts["send_inject"], ts["recv_deliver"], ts["match_complete"]
	if !(sendTS < deliverTS && deliverTS < matchTS) {
		t.Fatalf("corrected timeline not causal: send=%v deliver=%v match=%v", sendTS, deliverTS, matchTS)
	}
	// 100µs true one-way latency must survive the correction.
	if d := deliverTS - sendTS; d < 99 || d > 101 {
		t.Fatalf("corrected one-way gap = %vµs, want ~100", d)
	}
	if len(flowPhases) != 3 || flowPhases[0] != "s" || flowPhases[1] != "t" || flowPhases[2] != "f" {
		t.Fatalf("flow phases = %v, want [s t f]", flowPhases)
	}
}
