package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/prof"
	"repro/internal/spc"
)

// WritePrometheus renders the processes' stats in the Prometheus text
// exposition format (version 0.0.4): one counter family per SPC counter,
// with scope/cri/comm labels attributing each sample to its owner, and one
// histogram family per latency histogram with cumulative le buckets, so
// p50/p99 are derivable by any Prometheus-compatible consumer.
func WritePrometheus(w io.Writer, stats ...ProcStats) error {
	bw := bufio.NewWriter(w)
	for i := range stats {
		sortStats(&stats[i])
	}

	// Counter families in deterministic order (counter index): the process
	// total is always emitted so zeroes are visible; per-CRI and per-comm
	// attributions are emitted when non-zero.
	for ci := 0; ci < spc.NumCounters; ci++ {
		c := spc.Counter(ci)
		name := "mpi_spc_" + c.String()
		fmt.Fprintf(bw, "# HELP %s Software performance counter %s.\n", name, c.String())
		fmt.Fprintf(bw, "# TYPE %s counter\n", name)
		for _, ps := range stats {
			rank := strconv.Itoa(ps.Rank)
			fmt.Fprintf(bw, "%s{rank=%q,scope=\"process\"} %d\n", name, rank, ps.Process.Get(c))
			for _, cs := range ps.PerCRI {
				if v := cs.Counters.Get(c); v != 0 {
					fmt.Fprintf(bw, "%s{rank=%q,scope=\"cri\",cri=%q} %d\n", name, rank, strconv.Itoa(cs.Index), v)
				}
			}
			for _, cs := range ps.PerComm {
				if v := cs.Counters.Get(c); v != 0 {
					fmt.Fprintf(bw, "%s{rank=%q,scope=\"comm\",comm=%q} %d\n", name, rank, strconv.FormatUint(uint64(cs.ID), 10), v)
				}
			}
		}
	}

	// Histogram families. All processes share the bucket layout, so one
	// TYPE line per name covers every rank's series. Buckets are emitted
	// sparsely (only where the cumulative count grew) plus the mandatory
	// +Inf bucket, which by the exposition-format contract equals _count.
	for _, hn := range histNames(stats) {
		name := "mpi_" + hn
		fmt.Fprintf(bw, "# HELP %s Latency histogram %s (nanoseconds).\n", name, hn)
		fmt.Fprintf(bw, "# TYPE %s histogram\n", name)
		for _, ps := range stats {
			rank := strconv.Itoa(ps.Rank)
			for _, h := range ps.Hists {
				if h.Name != hn {
					continue
				}
				var cum int64
				for i, b := range h.Hist.Buckets {
					cum += b
					if b == 0 || i == NumBuckets-1 {
						continue
					}
					fmt.Fprintf(bw, "%s_bucket{rank=%q,le=%q} %d\n",
						name, rank, strconv.FormatInt(BucketUpper(i), 10), cum)
				}
				fmt.Fprintf(bw, "%s_bucket{rank=%q,le=\"+Inf\"} %d\n", name, rank, cum)
				fmt.Fprintf(bw, "%s_sum{rank=%q} %d\n", name, rank, h.Hist.Sum)
				fmt.Fprintf(bw, "%s_count{rank=%q} %d\n", name, rank, cum)
			}
		}
	}

	// Contention-profiler families (lock sites, phase clocks) for every rank
	// carrying a non-empty profiler snapshot.
	rs := make([]prof.RankSnapshot, 0, len(stats))
	for _, ps := range stats {
		rs = append(rs, prof.RankSnapshot{Rank: ps.Rank, Snap: ps.Prof})
	}
	if err := prof.WritePrometheusRanks(bw, rs); err != nil {
		return err
	}
	return bw.Flush()
}

// escapeLabel escapes a label value per the Prometheus text exposition
// format: backslash, double quote, and newline must be escaped; everything
// else passes through.
func escapeLabel(v string) string {
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// WritePrometheusInfo emits one info-style gauge (value 1) whose labels
// carry free-form build/run metadata — transport name, caps, design — the
// idiomatic Prometheus pattern for string-valued facts. Label keys are
// emitted in sorted order and values escaped per the text format.
func WritePrometheusInfo(w io.Writer, name string, labels map[string]string) error {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	fmt.Fprintf(&b, "# HELP %s Run metadata.\n# TYPE %s gauge\n%s{", name, name, name)
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, k, escapeLabel(labels[k]))
	}
	b.WriteString("} 1\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// histNames collects the union of histogram names across stats, sorted.
func histNames(stats []ProcStats) []string {
	seen := map[string]bool{}
	var names []string
	for _, ps := range stats {
		for _, h := range ps.Hists {
			if !seen[h.Name] {
				seen[h.Name] = true
				names = append(names, h.Name)
			}
		}
	}
	sort.Strings(names)
	return names
}
