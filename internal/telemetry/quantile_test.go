package telemetry

import (
	"sort"
	"testing"
)

// TestQuantileExactAtBucketBoundaries: an observation sitting exactly on a
// bucket's upper bound is recovered exactly at every quantile — the
// estimator returns the bucket upper clamped to the recorded max, and at a
// boundary the two coincide.
func TestQuantileExactAtBucketBoundaries(t *testing.T) {
	for i := 0; i < NumBuckets-1; i++ {
		v := BucketUpper(i)
		h := NewHistogram()
		for k := 0; k < 100; k++ {
			h.ObserveNs(v)
		}
		s := h.Snapshot()
		for _, q := range []float64{0.01, 0.5, 0.99, 1} {
			if got := s.Quantile(q); got != v {
				t.Fatalf("bucket %d boundary %d: Quantile(%v) = %d", i, v, q, got)
			}
		}
		// One past the bound lands in the next bucket and is still exact
		// when it is the maximum.
		h2 := NewHistogram()
		h2.ObserveNs(v + 1)
		if got := h2.Snapshot().P99(); got != v+1 {
			t.Fatalf("boundary+1 %d: P99 = %d", v+1, got)
		}
	}
}

// TestQuantileWithinLogLinearBuckets: for values strewn inside buckets (not
// on bounds), the estimate is conservative — never below the exact ranked
// value — and bounded by the sub-bucket width: at most 1.5x the exact value
// (plus the max clamp, which can only tighten it).
func TestQuantileWithinLogLinearBuckets(t *testing.T) {
	h := NewHistogram()
	var vals []int64
	// Three observations per octave, off-boundary by construction.
	for e := uint(4); e < 28; e++ {
		for _, off := range []int64{1, 3, 5} {
			v := int64(1)<<e + int64(1)<<(e-2) + off
			vals = append(vals, v)
			h.ObserveNs(v)
		}
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	s := h.Snapshot()
	for _, q := range []float64{0.10, 0.50, 0.75, 0.90, 0.99} {
		rank := int(q*float64(len(vals))+0.5) - 1
		if rank < 0 {
			rank = 0
		}
		exact := vals[rank]
		est := s.Quantile(q)
		if est < exact {
			t.Errorf("q=%v: estimate %d below exact %d", q, est, exact)
		}
		if est > exact+exact/2+1 {
			t.Errorf("q=%v: estimate %d beyond the 1.5x sub-bucket bound of exact %d", q, est, exact)
		}
	}
}

// TestQuantileOverMergedShards: per-shard snapshots merged with Merge must
// answer quantiles identically to one histogram that saw every observation
// — the property the per-CRI/per-communicator roll-ups and the cluster
// aggregator rely on.
func TestQuantileOverMergedShards(t *testing.T) {
	const shards = 5
	whole := NewHistogram()
	parts := make([]*Histogram, shards)
	for i := range parts {
		parts[i] = NewHistogram()
	}
	var r lcg = 7
	for k := 0; k < 5000; k++ {
		v := int64(r.next() % (1 << (6 + r.next()%22)))
		whole.ObserveNs(v)
		parts[k%shards].ObserveNs(v)
	}
	merged := parts[0].Snapshot()
	for _, p := range parts[1:] {
		merged = merged.Merge(p.Snapshot())
	}
	ws := whole.Snapshot()
	if merged.Count != ws.Count || merged.Sum != ws.Sum || merged.Max != ws.Max {
		t.Fatalf("merged summary (%d %d %d) != whole (%d %d %d)",
			merged.Count, merged.Sum, merged.Max, ws.Count, ws.Sum, ws.Max)
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		if merged.Quantile(q) != ws.Quantile(q) {
			t.Errorf("q=%v: merged %d != whole %d", q, merged.Quantile(q), ws.Quantile(q))
		}
	}
}

// TestQuantileEmptyAndClamp: empty histograms answer 0, and out-of-range q
// clamps instead of panicking.
func TestQuantileEmptyAndClamp(t *testing.T) {
	var s HistSnapshot
	if s.Quantile(0.99) != 0 {
		t.Fatal("empty snapshot quantile != 0")
	}
	h := NewHistogram()
	h.ObserveNs(100)
	got := h.Snapshot()
	if got.Quantile(-1) != got.Quantile(0) || got.Quantile(2) != got.Quantile(1) {
		t.Fatal("out-of-range q not clamped")
	}
}
