package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"

	"repro/internal/prof"
	"repro/internal/spc"
)

// Sample is one point of the sampler's time series.
type Sample struct {
	// Elapsed is the time since the sampler started.
	Elapsed time.Duration
	// Counters is the rolled-up counter snapshot at that instant.
	Counters spc.Snapshot
	// Hists are the histogram snapshots at that instant.
	Hists []NamedHist
	// Prof is the contention-profiler snapshot at that instant; empty when
	// the sampler has no profiler source bound.
	Prof prof.Snapshot
}

// Source produces one observation for the sampler. Implementations snapshot
// live counter sets and histograms; they must be safe to call concurrently
// with the workload (snapshots are).
type Source func() (spc.Snapshot, []NamedHist)

// Sampler periodically snapshots a Source from a background goroutine into
// an in-memory time series. Start/Stop bracket the workload; Stop always
// takes one final sample so short runs still record their end state.
type Sampler struct {
	interval time.Duration
	src      Source
	profSrc  func() prof.Snapshot

	mu      sync.Mutex
	samples []Sample

	start time.Time
	stop  chan struct{}
	done  chan struct{}
}

// NewSampler creates a sampler reading src every interval. Intervals below
// 1ms are clamped to 1ms to keep the sampling goroutine from competing
// with the workload it observes.
func NewSampler(interval time.Duration, src Source) *Sampler {
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	return &Sampler{interval: interval, src: src}
}

// BindProf adds a contention-profiler source: every sample then also carries
// a prof.Snapshot, feeding the Chrome-trace phase counter track. Call before
// Start. Nil-safe on both receiver and source.
func (s *Sampler) BindProf(src func() prof.Snapshot) {
	if s != nil {
		s.profSrc = src
	}
}

// Start launches the background sampling goroutine.
func (s *Sampler) Start() {
	if s == nil || s.stop != nil {
		return
	}
	s.start = time.Now()
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	go s.loop()
}

func (s *Sampler) loop() {
	defer close(s.done)
	t := time.NewTicker(s.interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.take()
		}
	}
}

func (s *Sampler) take() {
	counters, hists := s.src()
	smp := Sample{Elapsed: time.Since(s.start), Counters: counters, Hists: hists}
	if s.profSrc != nil {
		smp.Prof = s.profSrc()
	}
	s.mu.Lock()
	s.samples = append(s.samples, smp)
	s.mu.Unlock()
}

// Stop halts sampling and records one final sample. Safe to call on a nil
// or never-started sampler; idempotent.
func (s *Sampler) Stop() {
	if s == nil || s.stop == nil {
		return
	}
	select {
	case <-s.stop: // already stopped
		return
	default:
	}
	close(s.stop)
	<-s.done
	s.take()
}

// Samples returns a copy of the collected time series.
func (s *Sampler) Samples() []Sample {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Sample(nil), s.samples...)
}

// WriteSamplesCSV renders a time series as CSV: one row per sample, one
// column per counter, and count/p50/p99/max columns per histogram. The
// header derives from the first sample's histogram layout.
func WriteSamplesCSV(w io.Writer, samples []Sample) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("elapsed_ns")
	for c := 0; c < spc.NumCounters; c++ {
		bw.WriteString("," + spc.Counter(c).String())
	}
	if len(samples) > 0 {
		for _, h := range samples[0].Hists {
			fmt.Fprintf(bw, ",%s_count,%s_p50,%s_p99,%s_max", h.Name, h.Name, h.Name, h.Name)
		}
	}
	bw.WriteByte('\n')
	for _, smp := range samples {
		bw.WriteString(strconv.FormatInt(int64(smp.Elapsed), 10))
		for c := 0; c < spc.NumCounters; c++ {
			bw.WriteString("," + strconv.FormatInt(smp.Counters.Get(spc.Counter(c)), 10))
		}
		for _, h := range smp.Hists {
			fmt.Fprintf(bw, ",%d,%d,%d,%d", h.Hist.Count, h.Hist.P50(), h.Hist.P99(), h.Hist.Max)
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// WriteCSV renders this sampler's collected series (see WriteSamplesCSV).
func (s *Sampler) WriteCSV(w io.Writer) error {
	return WriteSamplesCSV(w, s.Samples())
}
