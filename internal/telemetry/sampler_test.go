package telemetry

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/spc"
)

func TestSamplerCollects(t *testing.T) {
	var ticks atomic.Int64
	h := NewHistogram()
	h.ObserveNs(500)
	src := func() (spc.Snapshot, []NamedHist) {
		var sn spc.Snapshot
		sn[spc.MessagesSent] = ticks.Add(1)
		return sn, []NamedHist{{HistMsgLatency, h.Snapshot()}}
	}
	s := NewSampler(time.Millisecond, src)
	s.Start()
	time.Sleep(10 * time.Millisecond)
	s.Stop()
	samples := s.Samples()
	if len(samples) == 0 {
		t.Fatal("no samples collected")
	}
	// Stop takes a final sample, so the last one carries the last tick.
	last := samples[len(samples)-1]
	if got := last.Counters.Get(spc.MessagesSent); got != ticks.Load() {
		t.Fatalf("final sample counter = %d, want %d", got, ticks.Load())
	}
	if len(last.Hists) != 1 || last.Hists[0].Hist.Count != 1 {
		t.Fatalf("final sample histograms wrong: %+v", last.Hists)
	}
	for i := 1; i < len(samples); i++ {
		if samples[i].Elapsed < samples[i-1].Elapsed {
			t.Fatal("sample elapsed times not monotonic")
		}
	}
	// Stop is idempotent.
	s.Stop()
	if got := len(s.Samples()); got != len(samples) {
		t.Fatalf("second Stop changed sample count: %d -> %d", len(samples), got)
	}
}

func TestSamplerCSV(t *testing.T) {
	var sn spc.Snapshot
	sn[spc.MessagesReceived] = 64
	h := NewHistogram()
	h.ObserveNs(2000)
	samples := []Sample{
		{Elapsed: time.Millisecond, Counters: sn, Hists: []NamedHist{{HistLockWait, h.Snapshot()}}},
		{Elapsed: 2 * time.Millisecond, Counters: sn, Hists: []NamedHist{{HistLockWait, h.Snapshot()}}},
	}
	var sb strings.Builder
	if err := WriteSamplesCSV(&sb, samples); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d CSV lines, want header + 2 rows", len(lines))
	}
	header := strings.Split(lines[0], ",")
	if header[0] != "elapsed_ns" {
		t.Fatalf("header starts with %q", header[0])
	}
	wantCols := 1 + spc.NumCounters + 4 // elapsed + counters + count/p50/p99/max
	if len(header) != wantCols {
		t.Fatalf("header has %d columns, want %d", len(header), wantCols)
	}
	if !strings.Contains(lines[0], "lock_wait_ns_count") {
		t.Fatal("histogram columns missing from header")
	}
	for _, row := range lines[1:] {
		if got := len(strings.Split(row, ",")); got != wantCols {
			t.Fatalf("row has %d columns, want %d", got, wantCols)
		}
	}
	if !strings.Contains(lines[1], ",64,") {
		t.Fatal("counter value missing from row")
	}
}

func TestSamplerNil(t *testing.T) {
	var s *Sampler
	s.Start()
	s.Stop()
	if s.Samples() != nil {
		t.Fatal("nil sampler returned samples")
	}
	// Never-started sampler: Stop must not panic or hang.
	ns := NewSampler(time.Millisecond, func() (spc.Snapshot, []NamedHist) {
		return spc.Snapshot{}, nil
	})
	ns.Stop()
	if len(ns.Samples()) != 0 {
		t.Fatal("unstarted sampler recorded samples")
	}
}
