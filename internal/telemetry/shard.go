package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
)

// Trace shards are the per-process interchange format between a traced
// distributed run and cmd/tracemerge: each rank writes one JSON shard
// (its retained events plus clock anchors), and the merger reads them all
// back into RankEvents for WriteChromeTraceRanks to correct and stitch.

// traceShardVersion guards the shard schema; bump on incompatible change.
const traceShardVersion = 1

type traceShardFile struct {
	Version int `json:"version"`
	RankEvents
}

// WriteTraceShard writes one rank's events and clock anchors as a JSON
// shard.
func WriteTraceShard(w io.Writer, re RankEvents) error {
	enc := json.NewEncoder(w)
	return enc.Encode(traceShardFile{Version: traceShardVersion, RankEvents: re})
}

// ReadTraceShard parses a shard written by WriteTraceShard.
func ReadTraceShard(r io.Reader) (RankEvents, error) {
	var f traceShardFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return RankEvents{}, fmt.Errorf("telemetry: parse trace shard: %w", err)
	}
	if f.Version != traceShardVersion {
		return RankEvents{}, fmt.Errorf("telemetry: trace shard version %d, want %d", f.Version, traceShardVersion)
	}
	return f.RankEvents, nil
}
