package telemetry

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/prof"
	"repro/internal/spc"
)

// Telemetry bundles one process's latency histograms. The runtime stores
// the individual *Histogram pointers on its hot-path structures (so a
// disabled hook is a single nil check); the bundle exists for snapshotting,
// sampling, and export.
type Telemetry struct {
	// MatchSection records wall time spent inside the matching critical
	// section per entry (lock hold, not lock wait).
	MatchSection *Histogram
	// LockWait records blocking waits for a CRI instance lock on the send
	// path (the contention Table II's send_lock_waits counts).
	LockWait *Histogram
	// ProgressPass records the duration of one progress-engine pass.
	ProgressPass *Histogram
	// MsgLatency records send-inject to match-complete latency for eager
	// messages (the end-to-end tail the endpoint-contention studies chase).
	MsgLatency *Histogram
	// OneWayLatency records sender-inject to receiver-arrival latency for
	// traced messages, with the send timestamp corrected into the local
	// clock domain by the transport's NTP-style offset estimate. Only
	// meaningful on distributed runs with tracing enabled.
	OneWayLatency *Histogram
	// MatchResidency records how long a delivered packet sat in the matching
	// layer (arrival at the matching engine to match completion) — the
	// unexpected-queue residency the paper's matching-cost analysis needs.
	MatchResidency *Histogram
}

// New returns an enabled telemetry bundle with all histograms allocated.
func New() *Telemetry {
	return &Telemetry{
		MatchSection:   NewHistogram(),
		LockWait:       NewHistogram(),
		ProgressPass:   NewHistogram(),
		MsgLatency:     NewHistogram(),
		OneWayLatency:  NewHistogram(),
		MatchResidency: NewHistogram(),
	}
}

// Enabled reports whether the bundle records anything.
func (t *Telemetry) Enabled() bool { return t != nil }

// Histogram names used in snapshots and exports.
const (
	HistMatchSection   = "match_section_ns"
	HistLockWait       = "lock_wait_ns"
	HistProgressPass   = "progress_pass_ns"
	HistMsgLatency     = "msg_latency_ns"
	HistOneWayLatency  = "one_way_latency_ns"
	HistMatchResidency = "match_residency_ns"
)

// NamedHist pairs a histogram snapshot with its export name.
type NamedHist struct {
	Name string
	Hist HistSnapshot
}

// Snapshot captures all histograms in deterministic name order. Nil-safe:
// a nil bundle yields nil.
func (t *Telemetry) Snapshot() []NamedHist {
	if t == nil {
		return nil
	}
	return []NamedHist{
		{HistLockWait, t.LockWait.Snapshot()},
		{HistMatchResidency, t.MatchResidency.Snapshot()},
		{HistMatchSection, t.MatchSection.Snapshot()},
		{HistMsgLatency, t.MsgLatency.Snapshot()},
		{HistOneWayLatency, t.OneWayLatency.Snapshot()},
		{HistProgressPass, t.ProgressPass.Snapshot()},
	}
}

// CRIStat is one instance's attributed counter snapshot.
type CRIStat struct {
	Index    int
	Counters spc.Snapshot
}

// CommStat is one communicator's attributed counter snapshot.
type CommStat struct {
	ID       uint32
	Counters spc.Snapshot
}

// ProcStats is one process's full observability snapshot: the rolled-up
// process totals, the per-CRI and per-communicator child sets the totals
// merge from, a residual set for counters with no natural owner (plus
// freed communicators), and the latency histograms.
type ProcStats struct {
	Rank    int
	Process spc.Snapshot
	PerCRI  []CRIStat
	PerComm []CommStat
	// Residual holds process-scoped counters (progress-engine entries,
	// serial-mode try-lock failures) and the retained totals of freed
	// communicators. Process == Merge(Residual, PerCRI..., PerComm...).
	Residual spc.Snapshot
	Hists    []NamedHist
	// Prof is the contention-profiler snapshot (lock sites and per-thread
	// phase clocks); empty unless the world ran with Options.Profile.
	Prof prof.Snapshot
}

// MergeChildren recomputes process totals from the attributed children —
// the roll-up invariant Process must equal.
func (ps ProcStats) MergeChildren() spc.Snapshot {
	snaps := []spc.Snapshot{ps.Residual}
	for _, c := range ps.PerCRI {
		snaps = append(snaps, c.Counters)
	}
	for _, c := range ps.PerComm {
		snaps = append(snaps, c.Counters)
	}
	return spc.Merge(snaps...)
}

// WriteText renders a human-readable attribution dump: process totals,
// each CRI's and communicator's share, the residual, then histogram
// summaries. Ordering is deterministic.
func (ps ProcStats) WriteText(w io.Writer) error {
	sortStats(&ps)
	if _, err := fmt.Fprintf(w, "rank %d process totals:\n%s", ps.Rank, indent(ps.Process.String())); err != nil {
		return err
	}
	for _, c := range ps.PerCRI {
		fmt.Fprintf(w, "cri %d:\n%s", c.Index, indent(c.Counters.String()))
	}
	for _, c := range ps.PerComm {
		fmt.Fprintf(w, "comm %d:\n%s", c.ID, indent(c.Counters.String()))
	}
	fmt.Fprintf(w, "residual:\n%s", indent(ps.Residual.String()))
	for _, h := range ps.Hists {
		if h.Hist.Count == 0 {
			continue
		}
		fmt.Fprintf(w, "hist %-18s count=%d p50=%v p90=%v p99=%v max=%v\n",
			h.Name, h.Hist.Count,
			time.Duration(h.Hist.P50()), time.Duration(h.Hist.P90()),
			time.Duration(h.Hist.P99()), time.Duration(h.Hist.Max))
	}
	if !ps.Prof.Empty() {
		rep := prof.BuildReport(ps.Rank, "", 0, ps.Prof)
		if err := rep.WriteText(w); err != nil {
			return err
		}
	}
	return nil
}

func indent(s string) string {
	if s == "" {
		return "  (all zero)\n"
	}
	var out []byte
	for _, line := range splitLines(s) {
		out = append(out, ' ', ' ')
		out = append(out, line...)
		out = append(out, '\n')
	}
	return string(out)
}

func splitLines(s string) []string {
	var lines []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			lines = append(lines, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		lines = append(lines, s[start:])
	}
	return lines
}

// sortStats normalizes ordering for deterministic export.
func sortStats(ps *ProcStats) {
	sort.Slice(ps.PerCRI, func(i, j int) bool { return ps.PerCRI[i].Index < ps.PerCRI[j].Index })
	sort.Slice(ps.PerComm, func(i, j int) bool { return ps.PerComm[i].ID < ps.PerComm[j].ID })
	sort.Slice(ps.Hists, func(i, j int) bool { return ps.Hists[i].Name < ps.Hists[j].Name })
}
