// Package trace is a low-overhead event tracer for the runtime: fixed-size
// sharded ring buffers that record 24-byte events with a single atomic and
// a short critical section, suitable for the message path's hot loops. A
// disabled or nil tracer costs one branch.
//
// It complements the SPC counters: counters aggregate, the tracer keeps the
// most recent N events with timestamps and arguments for post-mortem
// inspection of interleavings (e.g. which thread injected which sequence
// number in what order).
package trace

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Kind classifies one traced event.
type Kind uint8

// Event kinds emitted by the runtime.
const (
	// KindSendInject: a two-sided message entered the fabric.
	// Arg0 = destination rank, Arg1 = sequence number.
	KindSendInject Kind = iota + 1
	// KindRecvDeliver: an inbound packet reached the matching engine.
	// Arg0 = source rank, Arg1 = sequence number.
	KindRecvDeliver
	// KindMatchComplete: a receive matched. Arg0 = source, Arg1 = tag.
	KindMatchComplete
	// KindRendezvousStart: an RTS matched and the sink was registered.
	// Arg0 = source, Arg1 = total length.
	KindRendezvousStart
	// KindRendezvousDone: a rendezvous receive finished.
	// Arg0 = source, Arg1 = bytes landed.
	KindRendezvousDone
	// KindPutIssue: a one-sided put was issued. Arg0 = target,
	// Arg1 = length.
	KindPutIssue
	// KindFlush: a window flush completed. Arg0 = target.
	KindFlush
	// KindProgress: one progress pass. Arg0 = events handled.
	KindProgress
)

var kindNames = [...]string{
	KindSendInject:      "send_inject",
	KindRecvDeliver:     "recv_deliver",
	KindMatchComplete:   "match_complete",
	KindRendezvousStart: "rendezvous_start",
	KindRendezvousDone:  "rendezvous_done",
	KindPutIssue:        "put_issue",
	KindFlush:           "flush",
	KindProgress:        "progress",
}

// String names the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one trace record.
type Event struct {
	// TS is nanoseconds since the tracer was created.
	TS int64
	// Seq is a global emission counter (total order across shards).
	Seq uint64
	// Flow is the message-lifecycle trace id linking this event to the same
	// message's events on other ranks (0 = not part of a traced flow).
	// Exporters turn it into flow arrows between the per-rank spans.
	Flow uint64
	// Kind classifies the event; Arg0/Arg1 are kind-specific.
	Kind Kind
	// CRI is the Communication Resource Instance the event is attributed
	// to, or -1 when the event has no instance affinity (Emit sets -1;
	// EmitCRI sets the index). Exporters use it to place events on
	// per-instance timeline rows.
	CRI  int16
	Arg0 int32
	Arg1 int32
}

func (e Event) String() string {
	if e.CRI >= 0 {
		return fmt.Sprintf("%10dns #%06d %-17s a0=%-6d a1=%-6d cri=%d", e.TS, e.Seq, e.Kind, e.Arg0, e.Arg1, e.CRI)
	}
	return fmt.Sprintf("%10dns #%06d %-17s a0=%-6d a1=%d", e.TS, e.Seq, e.Kind, e.Arg0, e.Arg1)
}

const numShards = 16

type shard struct {
	mu   sync.Mutex
	ring []Event
	next int
	full bool
}

// Tracer records events into sharded bounded rings, overwriting the oldest
// entries when full. All methods are safe for concurrent use; a nil Tracer
// ignores everything.
type Tracer struct {
	start   time.Time
	enabled atomic.Bool
	seq     atomic.Uint64
	rr      atomic.Uint64
	shards  [numShards]shard
}

// New creates an enabled tracer keeping about capacity events in total.
func New(capacity int) *Tracer {
	if capacity < numShards {
		capacity = numShards
	}
	t := &Tracer{start: time.Now()}
	per := capacity / numShards
	for i := range t.shards {
		t.shards[i].ring = make([]Event, per)
	}
	t.enabled.Store(true)
	return t
}

// SetEnabled toggles recording.
func (t *Tracer) SetEnabled(on bool) {
	if t != nil {
		t.enabled.Store(on)
	}
}

// Emit records one event with no instance attribution. Nil-safe and
// disabled-safe.
func (t *Tracer) Emit(k Kind, a0, a1 int32) { t.EmitCRI(k, -1, a0, a1) }

// EmitCRI records one event attributed to CRI instance cri (pass a
// negative value for none). Nil-safe and disabled-safe.
func (t *Tracer) EmitCRI(k Kind, cri int, a0, a1 int32) {
	t.EmitFlowCRI(k, 0, cri, a0, a1)
}

// EmitFlowCRI records one event attributed to CRI instance cri and carrying
// message-lifecycle flow id flow (0 = no flow). Nil-safe and disabled-safe.
func (t *Tracer) EmitFlowCRI(k Kind, flow uint64, cri int, a0, a1 int32) {
	if t == nil || !t.enabled.Load() {
		return
	}
	if cri < 0 || cri > 1<<15-1 {
		cri = -1
	}
	e := Event{
		TS:   time.Since(t.start).Nanoseconds(),
		Seq:  t.seq.Add(1),
		Flow: flow,
		Kind: k,
		CRI:  int16(cri),
		Arg0: a0,
		Arg1: a1,
	}
	s := &t.shards[t.rr.Add(1)%numShards]
	s.mu.Lock()
	s.ring[s.next] = e
	s.next++
	if s.next == len(s.ring) {
		s.next = 0
		s.full = true
	}
	s.mu.Unlock()
}

// StartUnixNano returns the wall-clock instant (UnixNano) the tracer's
// relative timestamps are measured from. Shard mergers use it to place
// per-rank traces on one absolute timeline.
func (t *Tracer) StartUnixNano() int64 {
	if t == nil {
		return 0
	}
	return t.start.UnixNano()
}

// Snapshot returns the retained events ordered by emission sequence.
func (t *Tracer) Snapshot() []Event {
	if t == nil {
		return nil
	}
	var out []Event
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		if s.full {
			out = append(out, s.ring...)
		} else {
			out = append(out, s.ring[:s.next]...)
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Dump writes the retained events, one per line.
func (t *Tracer) Dump(w io.Writer) error {
	for _, e := range t.Snapshot() {
		if _, err := fmt.Fprintln(w, e); err != nil {
			return err
		}
	}
	return nil
}

// CountKind returns how many retained events have the given kind. It
// counts under the shard locks directly — no snapshot allocation and no
// sort, so hot assertions and samplers can call it freely.
func (t *Tracer) CountKind(k Kind) int {
	if t == nil {
		return 0
	}
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		ring := s.ring
		if !s.full {
			ring = s.ring[:s.next]
		}
		for _, e := range ring {
			if e.Kind == k {
				n++
			}
		}
		s.mu.Unlock()
	}
	return n
}
