package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Emit(KindSendInject, 1, 2)
	tr.SetEnabled(true)
	if got := tr.Snapshot(); got != nil {
		t.Fatalf("nil tracer snapshot = %v", got)
	}
}

func TestEmitAndSnapshotOrdered(t *testing.T) {
	tr := New(64)
	for i := 0; i < 10; i++ {
		tr.Emit(KindSendInject, int32(i), int32(i*10))
	}
	evs := tr.Snapshot()
	if len(evs) != 10 {
		t.Fatalf("snapshot len = %d", len(evs))
	}
	for i, e := range evs {
		if e.Arg0 != int32(i) || e.Arg1 != int32(i*10) {
			t.Fatalf("event %d = %+v", i, e)
		}
		if i > 0 && e.Seq <= evs[i-1].Seq {
			t.Fatal("snapshot not sequence-ordered")
		}
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	tr := New(32) // 16 shards x 2 per shard
	const emitted = 500
	for i := 0; i < emitted; i++ {
		tr.Emit(KindProgress, int32(i), 0)
	}
	evs := tr.Snapshot()
	if len(evs) != 32 {
		t.Fatalf("retained %d events, want 32", len(evs))
	}
	// All retained events must be from the most recent emissions.
	for _, e := range evs {
		if e.Arg0 < emitted-2*32 {
			t.Fatalf("retained stale event %+v", e)
		}
	}
}

func TestDisabledTracerRecordsNothing(t *testing.T) {
	tr := New(16)
	tr.SetEnabled(false)
	tr.Emit(KindFlush, 1, 1)
	if len(tr.Snapshot()) != 0 {
		t.Fatal("disabled tracer recorded an event")
	}
	tr.SetEnabled(true)
	tr.Emit(KindFlush, 1, 1)
	if len(tr.Snapshot()) != 1 {
		t.Fatal("re-enabled tracer did not record")
	}
}

func TestConcurrentEmit(t *testing.T) {
	tr := New(4096)
	const (
		goroutines = 8
		per        = 200
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tr.Emit(KindRecvDeliver, int32(g), int32(i))
			}
		}(g)
	}
	wg.Wait()
	evs := tr.Snapshot()
	if len(evs) != goroutines*per {
		t.Fatalf("retained %d, want %d", len(evs), goroutines*per)
	}
	seen := map[uint64]bool{}
	for _, e := range evs {
		if seen[e.Seq] {
			t.Fatalf("sequence %d duplicated", e.Seq)
		}
		seen[e.Seq] = true
	}
}

func TestDumpAndStrings(t *testing.T) {
	tr := New(16)
	tr.Emit(KindMatchComplete, 3, 42)
	var sb strings.Builder
	if err := tr.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "match_complete") || !strings.Contains(out, "a1=42") {
		t.Fatalf("dump = %q", out)
	}
	if Kind(200).String() == "" || !strings.Contains(Kind(200).String(), "200") {
		t.Fatal("unknown kind String")
	}
}

func TestCountKind(t *testing.T) {
	tr := New(64)
	tr.Emit(KindPutIssue, 0, 0)
	tr.Emit(KindPutIssue, 0, 0)
	tr.Emit(KindFlush, 0, 0)
	if got := tr.CountKind(KindPutIssue); got != 2 {
		t.Fatalf("CountKind(put) = %d", got)
	}
	if got := tr.CountKind(KindFlush); got != 1 {
		t.Fatalf("CountKind(flush) = %d", got)
	}
	var nilTr *Tracer
	if got := nilTr.CountKind(KindFlush); got != 0 {
		t.Fatalf("nil CountKind = %d", got)
	}
}

func TestCountKindOverwrittenRing(t *testing.T) {
	// CountKind must see exactly what Snapshot retains, including after the
	// rings wrap and overwrite older events.
	tr := New(32)
	for i := 0; i < 500; i++ {
		tr.Emit(KindProgress, int32(i), 0)
	}
	tr.Emit(KindFlush, 0, 0)
	want := 0
	for _, e := range tr.Snapshot() {
		if e.Kind == KindProgress {
			want++
		}
	}
	if got := tr.CountKind(KindProgress); got != want {
		t.Fatalf("CountKind = %d, snapshot holds %d", got, want)
	}
}

func TestEmitCRIAttribution(t *testing.T) {
	tr := New(64)
	tr.EmitCRI(KindSendInject, 3, 1, 2)
	tr.Emit(KindSendInject, 1, 2)           // unattributed
	tr.EmitCRI(KindSendInject, -5, 1, 2)    // negative clamps to -1
	tr.EmitCRI(KindSendInject, 1<<20, 1, 2) // out of int16 range clamps to -1
	evs := tr.Snapshot()
	if len(evs) != 4 {
		t.Fatalf("retained %d events", len(evs))
	}
	if evs[0].CRI != 3 {
		t.Fatalf("event 0 CRI = %d, want 3", evs[0].CRI)
	}
	for i := 1; i < 4; i++ {
		if evs[i].CRI != -1 {
			t.Fatalf("event %d CRI = %d, want -1", i, evs[i].CRI)
		}
	}
	if s := evs[0].String(); !strings.Contains(s, "cri=3") {
		t.Fatalf("attributed String() lacks cri: %q", s)
	}
	if s := evs[1].String(); strings.Contains(s, "cri=") {
		t.Fatalf("unattributed String() shows cri: %q", s)
	}
}
