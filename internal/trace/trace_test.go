package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Emit(KindSendInject, 1, 2)
	tr.SetEnabled(true)
	if got := tr.Snapshot(); got != nil {
		t.Fatalf("nil tracer snapshot = %v", got)
	}
}

func TestEmitAndSnapshotOrdered(t *testing.T) {
	tr := New(64)
	for i := 0; i < 10; i++ {
		tr.Emit(KindSendInject, int32(i), int32(i*10))
	}
	evs := tr.Snapshot()
	if len(evs) != 10 {
		t.Fatalf("snapshot len = %d", len(evs))
	}
	for i, e := range evs {
		if e.Arg0 != int32(i) || e.Arg1 != int32(i*10) {
			t.Fatalf("event %d = %+v", i, e)
		}
		if i > 0 && e.Seq <= evs[i-1].Seq {
			t.Fatal("snapshot not sequence-ordered")
		}
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	tr := New(32) // 16 shards x 2 per shard
	const emitted = 500
	for i := 0; i < emitted; i++ {
		tr.Emit(KindProgress, int32(i), 0)
	}
	evs := tr.Snapshot()
	if len(evs) != 32 {
		t.Fatalf("retained %d events, want 32", len(evs))
	}
	// All retained events must be from the most recent emissions.
	for _, e := range evs {
		if e.Arg0 < emitted-2*32 {
			t.Fatalf("retained stale event %+v", e)
		}
	}
}

func TestDisabledTracerRecordsNothing(t *testing.T) {
	tr := New(16)
	tr.SetEnabled(false)
	tr.Emit(KindFlush, 1, 1)
	if len(tr.Snapshot()) != 0 {
		t.Fatal("disabled tracer recorded an event")
	}
	tr.SetEnabled(true)
	tr.Emit(KindFlush, 1, 1)
	if len(tr.Snapshot()) != 1 {
		t.Fatal("re-enabled tracer did not record")
	}
}

func TestConcurrentEmit(t *testing.T) {
	tr := New(4096)
	const (
		goroutines = 8
		per        = 200
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tr.Emit(KindRecvDeliver, int32(g), int32(i))
			}
		}(g)
	}
	wg.Wait()
	evs := tr.Snapshot()
	if len(evs) != goroutines*per {
		t.Fatalf("retained %d, want %d", len(evs), goroutines*per)
	}
	seen := map[uint64]bool{}
	for _, e := range evs {
		if seen[e.Seq] {
			t.Fatalf("sequence %d duplicated", e.Seq)
		}
		seen[e.Seq] = true
	}
}

func TestDumpAndStrings(t *testing.T) {
	tr := New(16)
	tr.Emit(KindMatchComplete, 3, 42)
	var sb strings.Builder
	if err := tr.Dump(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "match_complete") || !strings.Contains(out, "a1=42") {
		t.Fatalf("dump = %q", out)
	}
	if Kind(200).String() == "" || !strings.Contains(Kind(200).String(), "200") {
		t.Fatal("unknown kind String")
	}
}

func TestCountKind(t *testing.T) {
	tr := New(64)
	tr.Emit(KindPutIssue, 0, 0)
	tr.Emit(KindPutIssue, 0, 0)
	tr.Emit(KindFlush, 0, 0)
	if got := tr.CountKind(KindPutIssue); got != 2 {
		t.Fatalf("CountKind(put) = %d", got)
	}
	if got := tr.CountKind(KindFlush); got != 1 {
		t.Fatalf("CountKind(flush) = %d", got)
	}
}
