// Package mocknet is a minimal in-process transport backend for unit tests
// of the layers above the wire (cri, progress). Unlike the simulated fabric
// it charges no CPU costs, models no rate limiter, and injects no faults —
// a packet pushed into an endpoint is immediately poppable from the remote
// context, which makes test timing deterministic and keeps those packages'
// tests free of any concrete production backend.
package mocknet

import (
	"errors"
	"sync"

	"repro/internal/hw"
	"repro/internal/ringbuf"
	"repro/internal/transport"
)

var (
	_ transport.Network   = (*Network)(nil)
	_ transport.Device    = (*Device)(nil)
	_ transport.Context   = (*Context)(nil)
	_ transport.Endpoint  = (*Endpoint)(nil)
	_ transport.MemRegion = (*MemRegion)(nil)
)

// Caps describes the mock wire: lossless, two-sided only.
func Caps() transport.Caps {
	return transport.Caps{Name: "mock", Lossless: true}
}

// Network implements transport.Network over mock devices.
type Network struct {
	mu   sync.Mutex
	devs map[int]*Device
}

// New creates an empty mock network.
func New() *Network { return &Network{devs: make(map[int]*Device)} }

func (n *Network) Caps() transport.Caps { return Caps() }

// NewDevice creates the device for rank. Fault and scramble settings in cfg
// are ignored (the mock wire is perfect, and advertises as much).
func (n *Network) NewDevice(rank int, m hw.Machine, cfg transport.DeviceConfig) (transport.Device, error) {
	d := NewDeviceFor(m)
	d.net, d.rank = n, rank
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.devs[rank]; dup {
		return nil, errors.New("mocknet: duplicate rank")
	}
	n.devs[rank] = d
	return d, nil
}

// Device is one mock NIC.
type Device struct {
	machine hw.Machine
	net     *Network
	rank    int

	mu       sync.Mutex
	contexts []*Context

	regMu   sync.RWMutex
	regions map[uint64]*MemRegion
	nextReg uint64
}

// NewDevice creates a standalone device (no network), the common unit-test
// entry point.
func NewDevice() *Device { return NewDeviceFor(hw.Fast()) }

// NewDeviceFor creates a standalone device with an explicit machine model.
func NewDeviceFor(m hw.Machine) *Device {
	return &Device{machine: m, regions: make(map[uint64]*MemRegion)}
}

func (d *Device) Machine() hw.Machine { return d.machine }

func (d *Device) Caps() transport.Caps { return Caps() }

// CreateContext allocates a context; depth <= 0 selects 4096.
func (d *Device) CreateContext(depth int) (transport.Context, error) {
	if depth <= 0 {
		depth = 4096
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	c := &Context{
		index: len(d.contexts),
		recvQ: ringbuf.NewMPSC[*transport.Packet](depth),
		cq:    ringbuf.NewMPSC[transport.CQE](depth),
	}
	d.contexts = append(d.contexts, c)
	return c, nil
}

// Context returns context i, or nil.
func (d *Device) Context(i int) *Context {
	d.mu.Lock()
	defer d.mu.Unlock()
	if i < 0 || i >= len(d.contexts) {
		return nil
	}
	return d.contexts[i]
}

// Connect wires an endpoint to context remoteIdx of rank peer's device on
// the same network.
func (d *Device) Connect(local transport.Context, peer int, remoteIdx int) (transport.Endpoint, error) {
	lc, ok := local.(*Context)
	if !ok || lc == nil {
		return nil, errors.New("mocknet: local context is not a mock context")
	}
	if d.net == nil {
		return nil, errors.New("mocknet: standalone device has no network")
	}
	d.net.mu.Lock()
	pd := d.net.devs[peer]
	d.net.mu.Unlock()
	if pd == nil {
		return nil, transport.ErrNoEndpoint
	}
	rc := pd.Context(remoteIdx)
	if rc == nil {
		return nil, transport.ErrNoEndpoint
	}
	return &Endpoint{local: lc, remote: rc}, nil
}

func (d *Device) RegisterMemory(buf []byte) transport.MemRegion {
	d.regMu.Lock()
	defer d.regMu.Unlock()
	d.nextReg++
	r := &MemRegion{id: d.nextReg, buf: buf}
	d.regions[r.id] = r
	return r
}

func (d *Device) DeregisterMemory(r transport.MemRegion) {
	if rr, ok := r.(*MemRegion); ok {
		d.regMu.Lock()
		delete(d.regions, rr.id)
		d.regMu.Unlock()
	}
}

func (d *Device) Region(id uint64) (transport.MemRegion, bool) {
	d.regMu.RLock()
	r, ok := d.regions[id]
	d.regMu.RUnlock()
	if !ok {
		return nil, false
	}
	return r, true
}

func (d *Device) Close() {}

// Context is one mock network context.
type Context struct {
	index int
	recvQ *ringbuf.MPSC[*transport.Packet]
	cq    *ringbuf.MPSC[transport.CQE]
}

func (c *Context) Index() int { return c.index }

// Poll drains completions then inbound packets, up to max.
func (c *Context) Poll(handler func(transport.CQE), max int) int {
	if max <= 0 {
		max = 64
	}
	n := 0
	for n < max {
		e, ok := c.cq.Pop()
		if !ok {
			break
		}
		handler(e)
		n++
	}
	for n < max {
		p, ok := c.recvQ.Pop()
		if !ok {
			break
		}
		handler(transport.CQE{Kind: transport.CQERecv, Packet: p})
		n++
	}
	return n
}

func (c *Context) Pending() bool { return c.cq.Len() > 0 || c.recvQ.Len() > 0 }

func (c *Context) push(p *transport.Packet) {
	for !c.recvQ.Push(p) {
	}
}

func (c *Context) complete(e transport.CQE) {
	for !c.cq.Push(e) {
	}
}

// The mock wire is two-sided only.
func (c *Context) Put(r transport.MemRegion, offset int, src []byte, token any) error {
	return transport.ErrNotSupported
}
func (c *Context) Get(r transport.MemRegion, offset int, dst []byte, token any) error {
	return transport.ErrNotSupported
}
func (c *Context) Accumulate(r transport.MemRegion, offset int, operand []int64, op transport.AccumulateOp, token any) error {
	return transport.ErrNotSupported
}
func (c *Context) FetchAndOp(r transport.MemRegion, offset int, operand int64, op transport.AccumulateOp, result *int64, token any) error {
	return transport.ErrNotSupported
}
func (c *Context) CompareAndSwap(r transport.MemRegion, offset int, compare, swap int64, result *int64, token any) error {
	return transport.ErrNotSupported
}

// Endpoint is a direct queue-to-queue send path.
type Endpoint struct {
	local  *Context
	remote *Context
}

// NewEndpoint connects two mock contexts directly — the test-harness analog
// of Device.Connect for standalone devices.
func NewEndpoint(local, remote transport.Context) *Endpoint {
	return &Endpoint{local: local.(*Context), remote: remote.(*Context)}
}

func (e *Endpoint) Send(p *transport.Packet) error {
	e.remote.push(p)
	e.local.complete(transport.CQE{Kind: transport.CQESendComplete, Packet: p})
	return nil
}

func (e *Endpoint) Resend(p *transport.Packet) error {
	e.remote.push(p)
	return nil
}

func (e *Endpoint) PutRegion(regionID uint64, offset int, src []byte, token any) error {
	return transport.ErrNotSupported
}

// MemRegion is a locally registered buffer.
type MemRegion struct {
	id  uint64
	buf []byte
}

func (r *MemRegion) ID() uint64    { return r.id }
func (r *MemRegion) Size() int     { return len(r.buf) }
func (r *MemRegion) Bytes() []byte { return r.buf }
