// Package tcpnet is a real TCP transport backend: each rank runs in its own
// OS process, listens on a TCP address, and reaches every peer over one
// multiplexed connection per peer pair, established lazily on first send.
// A dedicated reader goroutine per connection decodes wire frames into the
// target context's receive ring by mux ID, so the layers above (cri,
// progress, match, core) run unchanged over a real network — the point of
// the pluggable transport split.
//
// Connection model: all of a peer pair's contexts share one physical
// connection (Caps.Multiplexed). Nothing is dialed at world construction —
// Device.Connect returns a lazily connectable endpoint, and the first send
// toward a peer dials and handshakes. When both sides of a pair dial
// simultaneously, the race resolves deterministically: the lower rank's
// dial wins, the loser adopts the winner's connection and discards its own
// (counted as a DialRacesLost SPC tick). ConnsOpened counts successful
// dials, ConnsReused counts endpoints attaching to an already-established
// link, so surviving physical connections = conns_opened − dial_races_lost.
//
// Wire format: every packet travels as one length-prefixed multiplexed
// frame,
//
//	[u32 little-endian frame length][u32 mux ID][Packet.AppendWire bytes]
//
// where the mux ID is the destination context index — the demux key that
// routes the frame to one of the shared connection's per-context receive
// rings. Each connection opens with a three-frame handshake that names the
// dialing rank and takes one NTP-style clock sample:
//
//	dialer → server: magic(4) rank(4) reserved(4) t1(8)  — hello, 20 bytes
//	server → dialer: t2(8) t3(8)                         — echo,  16 bytes
//	dialer → server: θ(8) δ(8)                           — offset, 16 bytes
//
// t1/t4 are the dialer's send/receive instants, t2/t3 the server's receive/
// send instants. The dialer computes θ = ((t2−t1)+(t3−t4))/2 (server clock
// minus dialer clock) and δ = (t4−t1)−(t3−t2) (round-trip delay), shares
// them in the third frame, and both sides keep the minimum-δ sample per
// peer — the standard NTP filter: the sample with the smallest round trip
// has the least queueing asymmetry. Network.PeerClockOffsetNs exposes the
// estimate (transport.ClockSync) so the runtime can express remote
// timestamps in the local clock domain.
//
// TCP is lossless and per-connection FIFO, so the backend advertises
// Caps.Lossless and the runtime skips the ack/retransmit delivery layer.
// (A dial-race handover can reorder frames across the old and new
// connection; the matching engine's out-of-sequence buffering absorbs
// exactly that.) One-sided operations are not supported: rendezvous bulk
// data rides the FIN control message (the copy-in/copy-out path), and
// window creation in internal/rma is refused up front.
package tcpnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/hw"
	"repro/internal/ringbuf"
	"repro/internal/spc"
	"repro/internal/transport"
)

var _ transport.ClockSync = (*Network)(nil)
var _ transport.ClockSync = (*Device)(nil)

var (
	_ transport.Network   = (*Network)(nil)
	_ transport.Device    = (*Device)(nil)
	_ transport.Context   = (*Context)(nil)
	_ transport.Endpoint  = (*Endpoint)(nil)
	_ transport.MemRegion = (*MemRegion)(nil)
)

// handshakeMagic opens every connection so a stray dialer (or an
// old-protocol peer with per-context connections and unmultiplexed framing)
// is rejected instead of corrupting a context's packet stream.
const handshakeMagic = 0x43524933 // "CRI3"

// Handshake frame sizes: hello (magic, rank, reserved, t1), the server's
// echo (t2, t3), and the dialer's offset report (θ, δ).
const (
	helloSize  = 4 + 4 + 4 + 8
	echoSize   = 8 + 8
	offsetSize = 8 + 8
)

// DefaultDialTimeout bounds connection establishment (including retries
// while the peer's listener is still coming up) when Config.DialTimeout is
// unset.
const DefaultDialTimeout = 10 * time.Second

// defaultQueueDepth sizes context rings when CreateContext gets depth <= 0.
const defaultQueueDepth = 4096

// Caps describes the TCP wire: lossless FIFO streams multiplexed over one
// lazily dialed connection per peer pair, two-sided only, no fault
// injection (the kernel would repair injected faults anyway).
func Caps() transport.Caps {
	return transport.Caps{Name: "tcp", Lossless: true, Multiplexed: true}
}

// ParsePeers splits a comma-separated peer address list, trimming
// whitespace around each address and rejecting empty or duplicate entries —
// a duplicated address would otherwise surface only as a confusing dial
// failure or a world wired to the wrong rank.
func ParsePeers(list string) ([]string, error) {
	raw := strings.Split(list, ",")
	peers := make([]string, 0, len(raw))
	seen := make(map[string]int, len(raw))
	for i, a := range raw {
		a = strings.TrimSpace(a)
		if a == "" {
			return nil, fmt.Errorf("tcpnet: empty peer address at position %d in %q", i, list)
		}
		if prev, dup := seen[a]; dup {
			return nil, fmt.Errorf("tcpnet: duplicate peer address %q at positions %d and %d — each rank needs its own listen address", a, prev, i)
		}
		seen[a] = i
		peers = append(peers, a)
	}
	return peers, nil
}

// Config places one process in a TCP world.
type Config struct {
	// Rank is this process's world rank.
	Rank int
	// Size is the world size (number of processes).
	Size int
	// Listen is the address this rank accepts peer connections on
	// (e.g. "127.0.0.1:7100"). May be empty when Size == 1.
	Listen string
	// Peers[r] is rank r's listen address. Peers[Rank] is ignored (same-rank
	// endpoints short-circuit in process). Must have Size entries when
	// Size > 1.
	Peers []string
	// DialTimeout bounds connection establishment per peer, retrying
	// while the peer's listener comes up (0 = DefaultDialTimeout).
	DialTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.DialTimeout <= 0 {
		c.DialTimeout = DefaultDialTimeout
	}
	return c
}

func (c Config) validate() error {
	if c.Size <= 0 {
		return errors.New("tcpnet: config needs Size >= 1")
	}
	if c.Rank < 0 || c.Rank >= c.Size {
		return fmt.Errorf("tcpnet: rank %d outside world of %d", c.Rank, c.Size)
	}
	if c.Size > 1 {
		if c.Listen == "" {
			return errors.New("tcpnet: multi-process world needs a Listen address")
		}
		if len(c.Peers) != c.Size {
			return fmt.Errorf("tcpnet: %d peer addresses for world of %d", len(c.Peers), c.Size)
		}
	}
	return nil
}

// Network is one process's slice of a TCP world: the local listener, the
// per-peer connection slots, and the clock-offset table.
type Network struct {
	cfg Config
	ln  net.Listener

	mu     sync.Mutex
	dev    *Device
	conns  []net.Conn
	closed bool
	wg     sync.WaitGroup

	// slots[r] is the connection slot toward rank r — at most one live
	// physical link per peer pair, shared by every context.
	slots []peerSlot

	clockMu sync.Mutex
	clocks  map[int]clockSample
}

// peerSlot serializes connection establishment toward one peer: at most one
// local dial in flight, and the deterministic adoption of inbound
// connections (see adopt).
type peerSlot struct {
	mu      sync.Mutex
	cond    *sync.Cond
	link    *link
	dialing bool
}

// link is one live physical connection to a peer, shared by every local
// context sending there. The mutex serializes frame writes — matched-path
// sends already hold the CRI lock, but distinct CRIs and control-path sends
// race onto the shared connection.
type link struct {
	conn   net.Conn
	mu     sync.Mutex
	buf    []byte
	broken atomic.Bool
}

func (l *link) alive() bool { return !l.broken.Load() }

func (l *link) close() {
	l.broken.Store(true)
	l.conn.Close()
}

// writeFrame frames p for mux and writes it to the connection, marking the
// link broken (and closing it) on failure so every sharer re-establishes.
func (l *link) writeFrame(p *transport.Packet, mux uint32, ctr *spc.Set) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.broken.Load() {
		return errors.New("tcpnet: link down")
	}
	l.buf = p.AppendMuxFrame(l.buf[:0], mux)
	n, err := l.conn.Write(l.buf)
	if err == nil {
		return nil
	}
	if n > 0 && n < len(l.buf) {
		// Part of the frame reached the kernel before the connection died;
		// the stream is now mid-frame and unusable even if writes resumed.
		ctr.Inc(spc.ShortWrites)
	}
	l.broken.Store(true)
	l.conn.Close()
	return err
}

// clockSample is one NTP-style offset estimate for a peer: offset is
// local − peer in nanoseconds, delta the round-trip delay of the exchange
// that produced it. Lower delta = tighter bound on the true offset.
type clockSample struct {
	offset int64
	delta  int64
}

// recordClockSample keeps the minimum-delta sample per peer. Every
// connection handshake with a peer contributes one sample (in either
// direction), so a pair that raced its dials converges on the best of the
// exchanges.
func (n *Network) recordClockSample(peer int, offset, delta int64) {
	n.clockMu.Lock()
	defer n.clockMu.Unlock()
	if n.clocks == nil {
		n.clocks = make(map[int]clockSample)
	}
	if cur, ok := n.clocks[peer]; !ok || delta < cur.delta {
		n.clocks[peer] = clockSample{offset: offset, delta: delta}
	}
}

// PeerClockOffsetNs implements transport.ClockSync: the estimated local − peer
// clock difference in nanoseconds. The local rank's offset is zero by
// definition; other peers have an estimate once a connection handshake with
// them completed in either direction — with lazy establishment that means
// once the pair first communicated.
func (n *Network) PeerClockOffsetNs(peer int) (int64, bool) {
	if peer == n.cfg.Rank {
		return 0, true
	}
	n.clockMu.Lock()
	defer n.clockMu.Unlock()
	s, ok := n.clocks[peer]
	return s.offset, ok
}

func newNetwork(cfg Config, ln net.Listener) *Network {
	n := &Network{cfg: cfg, ln: ln, slots: make([]peerSlot, cfg.Size)}
	for i := range n.slots {
		n.slots[i].cond = sync.NewCond(&n.slots[i].mu)
	}
	return n
}

// New starts the rank's listener and returns its network. The listener
// accepts in the background immediately so peers can dial before this
// process reaches NewDevice; peer connections themselves are established
// lazily, on the first send toward each peer.
func New(cfg Config) (*Network, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	var ln net.Listener
	if cfg.Size > 1 {
		var err error
		ln, err = net.Listen("tcp", cfg.Listen)
		if err != nil {
			return nil, fmt.Errorf("tcpnet: listen %s: %w", cfg.Listen, err)
		}
	}
	n := newNetwork(cfg, ln)
	if ln != nil {
		n.wg.Add(1)
		go n.acceptLoop(ln)
	}
	return n, nil
}

// NewLoopback creates an n-process world's networks all inside one process,
// on ephemeral loopback ports — the unit-test and conformance harness entry
// point. The returned networks are wired to each other; network i serves
// rank i.
func NewLoopback(n int) ([]*Network, error) {
	listeners := make([]net.Listener, n)
	peers := make([]string, n)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, l := range listeners[:i] {
				l.Close()
			}
			return nil, fmt.Errorf("tcpnet: loopback listen: %w", err)
		}
		listeners[i] = ln
		peers[i] = ln.Addr().String()
	}
	nets := make([]*Network, n)
	for i := range nets {
		cfg := Config{Rank: i, Size: n, Listen: peers[i], Peers: peers}.withDefaults()
		nets[i] = newNetwork(cfg, listeners[i])
		if n > 1 {
			nets[i].wg.Add(1)
			go nets[i].acceptLoop(listeners[i])
		}
	}
	return nets, nil
}

// Addr returns the listener's address (useful with a ":0" Listen), or "".
func (n *Network) Addr() string {
	if n.ln == nil {
		return ""
	}
	return n.ln.Addr().String()
}

func (n *Network) Caps() transport.Caps { return Caps() }

// counters returns the device's SPC set, or nil before device creation (a
// nil *spc.Set ignores updates).
func (n *Network) counters() *spc.Set {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.dev == nil {
		return nil
	}
	return n.dev.counters
}

// NewDevice creates the device serving the local rank. rank must equal
// Config.Rank — a TCP network hosts exactly one rank per process. Fault and
// scramble settings in cfg are refused (the capability flags say so, and the
// world constructor checks them first).
func (n *Network) NewDevice(rank int, m hw.Machine, cfg transport.DeviceConfig) (transport.Device, error) {
	if rank != n.cfg.Rank {
		return nil, fmt.Errorf("tcpnet: device for rank %d on a network serving rank %d", rank, n.cfg.Rank)
	}
	if cfg.ScrambleWindow > 0 || cfg.Faults.Enabled() {
		return nil, transport.ErrNotSupported
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, errors.New("tcpnet: network closed")
	}
	if n.dev != nil {
		return nil, errors.New("tcpnet: device already created")
	}
	n.dev = &Device{net: n, machine: m, counters: cfg.Counters, regions: make(map[uint64]*MemRegion)}
	return n.dev, nil
}

// acceptLoop serves inbound peer connections until the listener closes.
func (n *Network) acceptLoop(ln net.Listener) {
	defer n.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		if !n.register(conn) {
			conn.Close()
			return
		}
		n.wg.Add(1)
		go n.serveConn(conn)
	}
}

// register records a connection for Close; reports false after shutdown.
func (n *Network) register(conn net.Conn) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return false
	}
	n.conns = append(n.conns, conn)
	return true
}

// serveConn answers the handshake (including the clock-sync exchange) on an
// inbound connection, offers it for adoption as the peer pair's shared
// link, then demultiplexes its frames until the peer closes. Adoption and
// frame service are independent: a connection that lost its dial race still
// delivers whatever frames the peer wrote before converging.
func (n *Network) serveConn(conn net.Conn) {
	defer n.wg.Done()
	var hs [helloSize]byte
	if _, err := io.ReadFull(conn, hs[:]); err != nil {
		return
	}
	t2 := time.Now().UnixNano()
	if binary.LittleEndian.Uint32(hs[0:]) != handshakeMagic {
		return
	}
	peer := int(int32(binary.LittleEndian.Uint32(hs[4:])))
	var echo [echoSize]byte
	binary.LittleEndian.PutUint64(echo[0:], uint64(t2))
	binary.LittleEndian.PutUint64(echo[8:], uint64(time.Now().UnixNano()))
	if _, err := conn.Write(echo[:]); err != nil {
		return
	}
	var off [offsetSize]byte
	if _, err := io.ReadFull(conn, off[:]); err != nil {
		return
	}
	// θ is server − dialer as the dialer computed it, so from this side
	// local − peer = +θ.
	theta := int64(binary.LittleEndian.Uint64(off[0:]))
	delta := int64(binary.LittleEndian.Uint64(off[8:]))
	if peer < 0 || peer >= n.cfg.Size || peer == n.cfg.Rank {
		return
	}
	n.recordClockSample(peer, theta, delta)
	n.adopt(peer, conn)
	n.readFrames(conn)
}

// adopt decides whether an inbound connection from peer becomes the pair's
// shared link. The deterministic rule is that the lower rank's dial wins a
// symmetric-dial race:
//
//   - peer < rank: the peer's dial outranks ours — adopt unconditionally.
//     A live link of our own is the losing side of the race (or a stale
//     path the peer replaced); it is discarded and counted DialRacesLost.
//   - peer > rank: our dial would win, so adopt only when the path is
//     genuinely free — no live link and no dial in flight. Otherwise the
//     connection is left unadopted; serveConn still reads its frames until
//     the peer notices the loss and closes it.
func (n *Network) adopt(peer int, conn net.Conn) {
	s := &n.slots[peer]
	s.mu.Lock()
	defer s.mu.Unlock()
	if peer < n.cfg.Rank {
		old := s.link
		s.link = &link{conn: conn}
		if old != nil && old.alive() {
			n.counters().Inc(spc.DialRacesLost)
			old.close()
		}
		s.cond.Broadcast()
		return
	}
	if (s.link == nil || !s.link.alive()) && !s.dialing {
		s.link = &link{conn: conn}
		s.cond.Broadcast()
	}
}

// readFrames demultiplexes length-prefixed mux frames from conn into the
// destination contexts' receive rings until the connection closes. Contexts
// are resolved once per mux ID and cached; resolution waits out the startup
// race where a peer's first send lands before this process created its
// contexts.
func (n *Network) readFrames(conn net.Conn) {
	var ctxs []*Context
	var lenb [4]byte
	for {
		if _, err := io.ReadFull(conn, lenb[:]); err != nil {
			return
		}
		frame := make([]byte, binary.LittleEndian.Uint32(lenb[:]))
		if _, err := io.ReadFull(conn, frame); err != nil {
			return
		}
		mux, pkt, err := transport.DecodeMuxFrame(frame)
		if err != nil {
			return
		}
		if pkt.TraceID != 0 {
			// Transport-arrival stamp for the critical-path attribution
			// layer: the gap to the matching-engine delivery stamp is the
			// receive-side progress lag (deliver_wait stage).
			pkt.ArriveNs = time.Now().UnixNano()
		}
		idx := int(mux)
		for idx >= len(ctxs) {
			ctxs = append(ctxs, nil)
		}
		if ctxs[idx] == nil {
			if ctxs[idx] = n.waitContext(idx); ctxs[idx] == nil {
				return
			}
		}
		ctxs[idx].push(pkt)
	}
}

// linkTo returns the pair's shared physical link, establishing it on first
// use: dial, handshake, and deterministic resolution of symmetric-dial
// races (lower rank's dial wins). established reports whether this call
// dialed the surviving connection; false means an existing or adopted link
// was reused.
func (n *Network) linkTo(peer int) (lk *link, established bool, err error) {
	s := &n.slots[peer]
	s.mu.Lock()
	for {
		if s.link != nil && s.link.alive() {
			lk = s.link
			s.mu.Unlock()
			return lk, false, nil
		}
		if !s.dialing {
			break
		}
		s.cond.Wait()
	}
	s.dialing = true
	s.mu.Unlock()

	conn, derr := n.dialPeer(peer)

	s.mu.Lock()
	s.dialing = false
	defer s.cond.Broadcast()
	if derr != nil {
		// A concurrently adopted inbound connection still serves the path
		// even though our own dial failed.
		if s.link != nil && s.link.alive() {
			lk = s.link
			s.mu.Unlock()
			return lk, false, nil
		}
		s.mu.Unlock()
		return nil, false, derr
	}
	ctr := n.counters()
	ctr.Inc(spc.ConnsOpened)
	if s.link != nil && s.link.alive() {
		// Symmetric-dial race, and the peer's connection was adopted while
		// we dialed. Only a lower-ranked peer's inbound dial is adopted
		// during our own dial, so the winner is deterministic: discard our
		// connection and use the peer's.
		ctr.Inc(spc.DialRacesLost)
		lk = s.link
		s.mu.Unlock()
		conn.Close()
		return lk, false, nil
	}
	lk = &link{conn: conn}
	s.link = lk
	s.mu.Unlock()
	// The link is bidirectional: the dialer reads the peer's frames off the
	// same connection.
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		n.readFrames(conn)
	}()
	return lk, true, nil
}

// dialPeer dials rank peer's listener and runs the full handshake: hello
// naming this rank, the server's clock echo, and the offset report.
func (n *Network) dialPeer(peer int) (net.Conn, error) {
	conn, err := n.dial(n.cfg.Peers[peer], n.counters())
	if err != nil {
		return nil, err
	}
	var hs [helloSize]byte
	binary.LittleEndian.PutUint32(hs[0:], handshakeMagic)
	binary.LittleEndian.PutUint32(hs[4:], uint32(n.cfg.Rank))
	t1 := time.Now().UnixNano()
	binary.LittleEndian.PutUint64(hs[12:], uint64(t1))
	if _, err := conn.Write(hs[:]); err != nil {
		conn.Close()
		return nil, fmt.Errorf("tcpnet: handshake: %w", err)
	}
	var echo [echoSize]byte
	if _, err := io.ReadFull(conn, echo[:]); err != nil {
		conn.Close()
		return nil, fmt.Errorf("tcpnet: handshake echo: %w", err)
	}
	t4 := time.Now().UnixNano()
	t2 := int64(binary.LittleEndian.Uint64(echo[0:]))
	t3 := int64(binary.LittleEndian.Uint64(echo[8:]))
	theta := ((t2 - t1) + (t3 - t4)) / 2 // server − dialer
	delta := (t4 - t1) - (t3 - t2)       // round-trip delay
	var off [offsetSize]byte
	binary.LittleEndian.PutUint64(off[0:], uint64(theta))
	binary.LittleEndian.PutUint64(off[8:], uint64(delta))
	if _, err := conn.Write(off[:]); err != nil {
		conn.Close()
		return nil, fmt.Errorf("tcpnet: handshake offset: %w", err)
	}
	// From the dialer's side, local − peer = dialer − server = −θ.
	n.recordClockSample(peer, -theta, delta)
	return conn, nil
}

// waitContext resolves a local context index, waiting out the startup race
// where a peer's first frame arrives before this process has created its
// contexts.
func (n *Network) waitContext(idx int) *Context {
	deadline := time.Now().Add(n.cfg.DialTimeout)
	for {
		n.mu.Lock()
		dev, closed := n.dev, n.closed
		n.mu.Unlock()
		if closed {
			return nil
		}
		if dev != nil {
			if c := dev.Context(idx); c != nil {
				return c
			}
		}
		if time.Now().After(deadline) {
			return nil
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// dial connects to a peer's listener, retrying while it comes up. Each
// failed attempt counts as a DialRetries SPC tick.
func (n *Network) dial(addr string, ctr *spc.Set) (net.Conn, error) {
	deadline := time.Now().Add(n.cfg.DialTimeout)
	for {
		conn, err := net.DialTimeout("tcp", addr, time.Until(deadline))
		if err == nil {
			if !n.register(conn) {
				conn.Close()
				return nil, errors.New("tcpnet: network closed")
			}
			return conn, nil
		}
		ctr.Inc(spc.DialRetries)
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("tcpnet: dial %s: %w", addr, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// close shuts the listener and every connection down and waits for the
// reader goroutines to drain.
func (n *Network) close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	conns := n.conns
	n.conns = nil
	n.mu.Unlock()
	if n.ln != nil {
		n.ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	n.wg.Wait()
}

// Device is the local rank's NIC.
type Device struct {
	net      *Network
	machine  hw.Machine
	counters *spc.Set

	mu       sync.Mutex
	contexts []*Context

	regMu   sync.RWMutex
	regions map[uint64]*MemRegion
	nextReg uint64
}

func (d *Device) Machine() hw.Machine { return d.machine }

func (d *Device) Caps() transport.Caps { return Caps() }

// CreateContext allocates a context; depth <= 0 selects the default.
func (d *Device) CreateContext(depth int) (transport.Context, error) {
	if depth <= 0 {
		depth = defaultQueueDepth
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	c := &Context{
		index: len(d.contexts),
		recvQ: ringbuf.NewMPSC[*transport.Packet](depth),
		cq:    ringbuf.NewMPSC[transport.CQE](depth),
	}
	d.contexts = append(d.contexts, c)
	return c, nil
}

// Context returns context i, or nil.
func (d *Device) Context(i int) *Context {
	d.mu.Lock()
	defer d.mu.Unlock()
	if i < 0 || i >= len(d.contexts) {
		return nil
	}
	return d.contexts[i]
}

// Connect wires a send path from local to context remoteIdx of rank peer.
// Same-rank endpoints short-circuit in process. Remote endpoints are lazily
// connectable: nothing is dialed here — the first Send establishes (or
// reuses) the pair's shared physical connection and the remote context
// index becomes the frame's mux ID.
func (d *Device) Connect(local transport.Context, peer int, remoteIdx int) (transport.Endpoint, error) {
	lc, ok := local.(*Context)
	if !ok || lc == nil {
		return nil, errors.New("tcpnet: local context is not a tcpnet context")
	}
	cfg := d.net.cfg
	if peer < 0 || peer >= cfg.Size {
		return nil, fmt.Errorf("tcpnet: peer %d outside world of %d: %w", peer, cfg.Size, transport.ErrNoEndpoint)
	}
	if peer == cfg.Rank {
		rc := d.Context(remoteIdx)
		if rc == nil {
			return nil, fmt.Errorf("tcpnet: no local context %d: %w", remoteIdx, transport.ErrNoEndpoint)
		}
		return &Endpoint{local: lc, loop: rc}, nil
	}
	if remoteIdx < 0 {
		return nil, fmt.Errorf("tcpnet: negative remote context %d: %w", remoteIdx, transport.ErrNoEndpoint)
	}
	return &Endpoint{local: lc, dev: d, peer: peer, mux: uint32(remoteIdx)}, nil
}

// PeerClockOffsetNs implements transport.ClockSync on the device, delegating
// to the owning network's per-peer estimates.
func (d *Device) PeerClockOffsetNs(peer int) (int64, bool) {
	return d.net.PeerClockOffsetNs(peer)
}

func (d *Device) RegisterMemory(buf []byte) transport.MemRegion {
	d.regMu.Lock()
	defer d.regMu.Unlock()
	d.nextReg++
	r := &MemRegion{id: d.nextReg, buf: buf}
	d.regions[r.id] = r
	return r
}

func (d *Device) DeregisterMemory(r transport.MemRegion) {
	if rr, ok := r.(*MemRegion); ok {
		d.regMu.Lock()
		delete(d.regions, rr.id)
		d.regMu.Unlock()
	}
}

func (d *Device) Region(id uint64) (transport.MemRegion, bool) {
	d.regMu.RLock()
	r, ok := d.regions[id]
	d.regMu.RUnlock()
	if !ok {
		return nil, false
	}
	return r, true
}

// Close tears the whole network slice down: listener, every connection,
// reader goroutines. Contexts remain readable so in-flight progress loops
// can drain.
func (d *Device) Close() { d.net.close() }

// Context is one injection path with its own receive and completion rings.
// The rings are multi-producer (reader goroutines and local endpoints push
// concurrently); Poll is called under the per-CRI lock.
type Context struct {
	index int
	recvQ *ringbuf.MPSC[*transport.Packet]
	cq    *ringbuf.MPSC[transport.CQE]
}

func (c *Context) Index() int { return c.index }

// Poll drains completions then inbound packets, up to max.
func (c *Context) Poll(handler func(transport.CQE), max int) int {
	if max <= 0 {
		max = 64
	}
	n := 0
	for n < max {
		e, ok := c.cq.Pop()
		if !ok {
			break
		}
		handler(e)
		n++
	}
	for n < max {
		p, ok := c.recvQ.Pop()
		if !ok {
			break
		}
		handler(transport.CQE{Kind: transport.CQERecv, Packet: p})
		n++
	}
	return n
}

func (c *Context) Pending() bool { return c.cq.Len() > 0 || c.recvQ.Len() > 0 }

func (c *Context) push(p *transport.Packet) {
	for !c.recvQ.Push(p) {
		// Ring full: the receiver is slower than the wire. Backpressure by
		// holding the reader goroutine (TCP flow control propagates it).
		time.Sleep(10 * time.Microsecond)
	}
}

func (c *Context) complete(e transport.CQE) {
	for !c.cq.Push(e) {
		time.Sleep(10 * time.Microsecond)
	}
}

// TCP is two-sided only.
func (c *Context) Put(r transport.MemRegion, offset int, src []byte, token any) error {
	return transport.ErrNotSupported
}
func (c *Context) Get(r transport.MemRegion, offset int, dst []byte, token any) error {
	return transport.ErrNotSupported
}
func (c *Context) Accumulate(r transport.MemRegion, offset int, operand []int64, op transport.AccumulateOp, token any) error {
	return transport.ErrNotSupported
}
func (c *Context) FetchAndOp(r transport.MemRegion, offset int, operand int64, op transport.AccumulateOp, result *int64, token any) error {
	return transport.ErrNotSupported
}
func (c *Context) CompareAndSwap(r transport.MemRegion, offset int, compare, swap int64, result *int64, token any) error {
	return transport.ErrNotSupported
}

// Endpoint is a lazily connectable send path to one remote context: either
// an in-process loopback (same rank) or a mux ID over the peer pair's
// shared connection. The first Send establishes the physical link (or
// attaches to one another context already established — a ConnsReused SPC
// tick).
type Endpoint struct {
	local *Context
	loop  *Context // same-rank short circuit; nil for TCP endpoints

	dev  *Device
	peer int
	mux  uint32

	// attached flips on the first successful link acquisition, so the
	// ConnsReused accounting ticks once per endpoint.
	attached atomic.Bool
}

// Send injects one packet and posts the local send completion. On TCP the
// completion is posted once the frame is handed to the kernel — the stream
// is lossless, so that is delivery, matching how a NIC reports DMA
// completion. The first send toward a peer establishes the shared
// connection; a failed establishment surfaces as ErrConnEstablish and the
// packet is not injected.
func (e *Endpoint) Send(p *transport.Packet) error {
	if err := e.write(p); err != nil {
		return err
	}
	e.local.complete(transport.CQE{Kind: transport.CQESendComplete, Packet: p})
	return nil
}

// Resend re-injects without a new completion. Unreachable in practice: the
// runtime disables the retransmit layer on lossless backends.
func (e *Endpoint) Resend(p *transport.Packet) error { return e.write(p) }

func (e *Endpoint) write(p *transport.Packet) error {
	if e.loop != nil {
		e.loop.push(p)
		return nil
	}
	lk, established, err := e.dev.net.linkTo(e.peer)
	if err != nil {
		return fmt.Errorf("%w: peer %d: %v", transport.ErrConnEstablish, e.peer, err)
	}
	ctr := e.dev.counters
	if !e.attached.Swap(true) && !established {
		ctr.Inc(spc.ConnsReused)
	}
	if err := lk.writeFrame(p, e.mux, ctr); err == nil {
		return nil
	}
	// The write failed and the link is marked broken for every sharer. One
	// re-establishment attempt: a peer restart or transient RST should not
	// kill the path for the rest of the run. The frame is re-sent whole on
	// the fresh link (the peer never saw a frame boundary cross, so
	// re-framing from the start is safe; a rare duplicate is absorbed by
	// the matching engine's sequence dedup).
	lk, _, rerr := e.dev.net.linkTo(e.peer)
	if rerr != nil {
		return fmt.Errorf("%w: peer %d: reconnect: %v", transport.ErrConnEstablish, e.peer, rerr)
	}
	ctr.Inc(spc.Reconnects)
	if werr := lk.writeFrame(p, e.mux, ctr); werr != nil {
		return fmt.Errorf("tcpnet: write to peer %d: %w", e.peer, werr)
	}
	return nil
}

// PutRegion requires one-sided support, which TCP does not advertise.
func (e *Endpoint) PutRegion(regionID uint64, offset int, src []byte, token any) error {
	return transport.ErrNotSupported
}

// MemRegion is a locally registered buffer (rendezvous sink bookkeeping).
type MemRegion struct {
	id  uint64
	buf []byte
}

func (r *MemRegion) ID() uint64    { return r.id }
func (r *MemRegion) Size() int     { return len(r.buf) }
func (r *MemRegion) Bytes() []byte { return r.buf }
