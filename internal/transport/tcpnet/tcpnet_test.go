package tcpnet

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/hw"
	"repro/internal/spc"
	"repro/internal/transport"
)

func newPair(t *testing.T) (d0, d1 transport.Device, c0, c1 transport.Context) {
	t.Helper()
	nets, err := NewLoopback(2)
	if err != nil {
		t.Fatal(err)
	}
	d0, err = nets[0].NewDevice(0, hw.Fast(), transport.DeviceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	d1, err = nets[1].NewDevice(1, hw.Fast(), transport.DeviceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d0.Close(); d1.Close() })
	c0, err = d0.CreateContext(0)
	if err != nil {
		t.Fatal(err)
	}
	c1, err = d1.CreateContext(0)
	if err != nil {
		t.Fatal(err)
	}
	return d0, d1, c0, c1
}

func poll1(t *testing.T, c transport.Context) transport.CQE {
	t.Helper()
	for i := 0; i < 1_000_000; i++ {
		var got *transport.CQE
		if c.Poll(func(e transport.CQE) { got = &e }, 1) > 0 {
			return *got
		}
	}
	t.Fatal("no completion arrived")
	return transport.CQE{}
}

func TestSendAcrossProcessesBoundary(t *testing.T) {
	d0, _, c0, c1 := newPair(t)
	ep, err := d0.Connect(c0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	env := transport.Envelope{Src: 0, Dst: 1, Tag: 7, Kind: transport.KindEager}
	pkt := transport.NewPacket(env, []byte("over the wire"), nil)
	pkt.RelSeq, pkt.RelSrc = 42, 0
	ep.Send(pkt)

	if e := poll1(t, c0); e.Kind != transport.CQESendComplete {
		t.Fatalf("local completion kind = %v", e.Kind)
	}
	e := poll1(t, c1)
	if e.Kind != transport.CQERecv {
		t.Fatalf("remote completion kind = %v", e.Kind)
	}
	got := e.Packet.Envelope()
	if got.Tag != 7 || string(e.Packet.Payload) != "over the wire" {
		t.Fatalf("packet corrupted: tag=%d payload=%q", got.Tag, e.Packet.Payload)
	}
	if e.Packet.RelSeq != 42 {
		t.Fatalf("driver metadata lost: RelSeq=%d", e.Packet.RelSeq)
	}
	if e.Packet.Token != nil {
		t.Fatal("token must not cross the wire")
	}
}

func TestLoopbackEndpointSameRank(t *testing.T) {
	d0, _, c0, _ := newPair(t)
	ep, err := d0.Connect(c0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	ep.Send(transport.NewPacket(transport.Envelope{Kind: transport.KindEager}, []byte("self"), nil))
	seen := 0
	for seen < 2 {
		e := poll1(t, c0)
		if e.Kind == transport.CQERecv && string(e.Packet.Payload) != "self" {
			t.Fatalf("payload = %q", e.Packet.Payload)
		}
		seen++
	}
}

func TestManyPacketsFIFO(t *testing.T) {
	d0, _, c0, c1 := newPair(t)
	ep, err := d0.Connect(c0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	const total = 5000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < total; i++ {
			env := transport.Envelope{Src: 0, Dst: 1, Seq: uint32(i), Kind: transport.KindEager}
			ep.Send(transport.NewPacket(env, nil, nil))
			// Drain local send completions so the CQ ring never fills.
			c0.Poll(func(transport.CQE) {}, 64)
		}
	}()
	next := uint32(0)
	for next < total {
		e := poll1(t, c1)
		if e.Kind != transport.CQERecv {
			continue
		}
		if got := e.Packet.Envelope().Seq; got != next {
			t.Fatalf("out of order: got seq %d, want %d (TCP must preserve FIFO)", got, next)
		}
		next++
	}
	wg.Wait()
}

func TestCapsAndUnsupportedOps(t *testing.T) {
	d0, _, c0, _ := newPair(t)
	caps := d0.Caps()
	if caps.Name != "tcp" || !caps.Lossless || caps.OneSided || caps.FaultInjection {
		t.Fatalf("caps = %+v", caps)
	}
	if got := caps.String(); got != "lossless" {
		t.Fatalf("caps string = %q", got)
	}
	r := d0.RegisterMemory(make([]byte, 8))
	if err := c0.Put(r, 0, []byte{1}, nil); !errors.Is(err, transport.ErrNotSupported) {
		t.Fatalf("Put err = %v", err)
	}
	ep, err := d0.Connect(c0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := ep.PutRegion(r.ID(), 0, []byte{1}, nil); !errors.Is(err, transport.ErrNotSupported) {
		t.Fatalf("PutRegion err = %v", err)
	}
}

func TestFaultConfigRefused(t *testing.T) {
	nets, err := NewLoopback(1)
	if err != nil {
		t.Fatal(err)
	}
	_, err = nets[0].NewDevice(0, hw.Fast(), transport.DeviceConfig{
		Faults: transport.FaultConfig{Drop: 0.1},
	})
	if !errors.Is(err, transport.ErrNotSupported) {
		t.Fatalf("err = %v, want ErrNotSupported", err)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Size: 0}); err == nil {
		t.Fatal("Size 0 accepted")
	}
	if _, err := New(Config{Rank: 2, Size: 2, Listen: "127.0.0.1:0", Peers: []string{"a", "b"}}); err == nil {
		t.Fatal("out-of-range rank accepted")
	}
	if _, err := New(Config{Rank: 0, Size: 2, Listen: "127.0.0.1:0", Peers: []string{"a"}}); err == nil {
		t.Fatal("short peer list accepted")
	}
	n, err := New(Config{Rank: 0, Size: 1})
	if err != nil {
		t.Fatalf("single-process world: %v", err)
	}
	d, err := n.NewDevice(0, hw.Fast(), transport.DeviceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.NewDevice(0, hw.Fast(), transport.DeviceConfig{}); err == nil {
		t.Fatal("duplicate device accepted")
	}
	d.Close()
}

func TestClockSyncHandshake(t *testing.T) {
	d0, d1, c0, _ := newPair(t)
	if _, err := d0.Connect(c0, 1, 0); err != nil {
		t.Fatal(err)
	}
	cs0, ok := d0.(transport.ClockSync)
	if !ok {
		t.Fatal("tcpnet device does not implement transport.ClockSync")
	}
	// The dialer has its sample immediately after Connect returns.
	off01, ok := cs0.PeerClockOffsetNs(1)
	if !ok {
		t.Fatal("dialer has no clock estimate for its peer")
	}
	if self, ok := cs0.PeerClockOffsetNs(0); !ok || self != 0 {
		t.Fatalf("self offset = %d, %v; want 0, true", self, ok)
	}
	if _, ok := cs0.PeerClockOffsetNs(7); ok {
		t.Fatal("estimate reported for a rank never contacted")
	}
	// The server side learns the offset from the third handshake frame;
	// wait out the reader goroutine.
	cs1 := d1.(transport.ClockSync)
	var off10 int64
	deadline := time.Now().Add(2 * time.Second)
	for {
		var ok bool
		if off10, ok = cs1.PeerClockOffsetNs(0); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never recorded the dialer's clock sample")
		}
		time.Sleep(time.Millisecond)
	}
	// Both processes share one physical clock here, so the estimates must be
	// near zero and antisymmetric: offset(0→1) ≈ −offset(1→0), both within
	// the loopback round trip of the true value (0).
	const tol = int64(50 * time.Millisecond)
	if off01 > tol || off01 < -tol {
		t.Fatalf("loopback offset 0→1 = %dns, want ≈0", off01)
	}
	if sum := off01 + off10; sum > tol || sum < -tol {
		t.Fatalf("offsets not antisymmetric: %d + %d = %d", off01, off10, sum)
	}
}

func TestReconnectAfterPeerConnDrop(t *testing.T) {
	nets, err := NewLoopback(2)
	if err != nil {
		t.Fatal(err)
	}
	ctr := spc.NewSet()
	d0, err := nets[0].NewDevice(0, hw.Fast(), transport.DeviceConfig{Counters: ctr})
	if err != nil {
		t.Fatal(err)
	}
	d1, err := nets[1].NewDevice(1, hw.Fast(), transport.DeviceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d0.Close(); d1.Close() })
	c0, err := d0.CreateContext(0)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := d1.CreateContext(0)
	if err != nil {
		t.Fatal(err)
	}
	ep, err := d0.Connect(c0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	send := func(tag int32, payload string) {
		env := transport.Envelope{Src: 0, Dst: 1, Tag: tag, Kind: transport.KindEager}
		ep.Send(transport.NewPacket(env, []byte(payload), nil))
		c0.Poll(func(transport.CQE) {}, 8)
	}
	recv := func(wantTag int32, wantPayload string) {
		deadline := time.Now().Add(5 * time.Second)
		for {
			var got *transport.Packet
			c1.Poll(func(e transport.CQE) {
				if e.Kind == transport.CQERecv {
					got = e.Packet
				}
			}, 8)
			if got != nil {
				env := got.Envelope()
				if env.Tag != wantTag || string(got.Payload) != wantPayload {
					t.Fatalf("got tag=%d payload=%q, want tag=%d payload=%q",
						env.Tag, got.Payload, wantTag, wantPayload)
				}
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("packet tag=%d never arrived", wantTag)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
	send(1, "before")
	recv(1, "before")
	// Kill the established connection out from under the endpoint. The next
	// write fails, triggering the one-shot reconnect path.
	tep := ep.(*Endpoint)
	tep.mu.Lock()
	tep.conn.Close()
	tep.mu.Unlock()
	// The failed write may be silently accepted by the kernel buffer once
	// before the RST surfaces; keep sending until the reconnect happens.
	deadline := time.Now().Add(5 * time.Second)
	for ctr.Get(spc.Reconnects) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("reconnect never happened")
		}
		send(2, "after")
		time.Sleep(time.Millisecond)
	}
	recv(2, "after")
	if got := ctr.Get(spc.Reconnects); got < 1 {
		t.Fatalf("reconnects = %d, want >= 1", got)
	}
}
