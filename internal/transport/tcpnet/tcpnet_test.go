package tcpnet

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/hw"
	"repro/internal/spc"
	"repro/internal/transport"
)

func newPair(t *testing.T) (d0, d1 transport.Device, c0, c1 transport.Context) {
	t.Helper()
	nets, err := NewLoopback(2)
	if err != nil {
		t.Fatal(err)
	}
	d0, err = nets[0].NewDevice(0, hw.Fast(), transport.DeviceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	d1, err = nets[1].NewDevice(1, hw.Fast(), transport.DeviceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d0.Close(); d1.Close() })
	c0, err = d0.CreateContext(0)
	if err != nil {
		t.Fatal(err)
	}
	c1, err = d1.CreateContext(0)
	if err != nil {
		t.Fatal(err)
	}
	return d0, d1, c0, c1
}

func poll1(t *testing.T, c transport.Context) transport.CQE {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for i := 0; ; i++ {
		var got *transport.CQE
		if c.Poll(func(e transport.CQE) { got = &e }, 1) > 0 {
			return *got
		}
		// Check the clock only occasionally: the poll itself must stay hot.
		if i%4096 == 0 && time.Now().After(deadline) {
			break
		}
	}
	t.Fatal("no completion arrived")
	return transport.CQE{}
}

func TestSendAcrossProcessesBoundary(t *testing.T) {
	d0, _, c0, c1 := newPair(t)
	ep, err := d0.Connect(c0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	env := transport.Envelope{Src: 0, Dst: 1, Tag: 7, Kind: transport.KindEager}
	pkt := transport.NewPacket(env, []byte("over the wire"), nil)
	pkt.RelSeq, pkt.RelSrc = 42, 0
	ep.Send(pkt)

	if e := poll1(t, c0); e.Kind != transport.CQESendComplete {
		t.Fatalf("local completion kind = %v", e.Kind)
	}
	e := poll1(t, c1)
	if e.Kind != transport.CQERecv {
		t.Fatalf("remote completion kind = %v", e.Kind)
	}
	got := e.Packet.Envelope()
	if got.Tag != 7 || string(e.Packet.Payload) != "over the wire" {
		t.Fatalf("packet corrupted: tag=%d payload=%q", got.Tag, e.Packet.Payload)
	}
	if e.Packet.RelSeq != 42 {
		t.Fatalf("driver metadata lost: RelSeq=%d", e.Packet.RelSeq)
	}
	if e.Packet.Token != nil {
		t.Fatal("token must not cross the wire")
	}
}

func TestLoopbackEndpointSameRank(t *testing.T) {
	d0, _, c0, _ := newPair(t)
	ep, err := d0.Connect(c0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	ep.Send(transport.NewPacket(transport.Envelope{Kind: transport.KindEager}, []byte("self"), nil))
	seen := 0
	for seen < 2 {
		e := poll1(t, c0)
		if e.Kind == transport.CQERecv && string(e.Packet.Payload) != "self" {
			t.Fatalf("payload = %q", e.Packet.Payload)
		}
		seen++
	}
}

func TestManyPacketsFIFO(t *testing.T) {
	d0, _, c0, c1 := newPair(t)
	ep, err := d0.Connect(c0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	const total = 5000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < total; i++ {
			env := transport.Envelope{Src: 0, Dst: 1, Seq: uint32(i), Kind: transport.KindEager}
			ep.Send(transport.NewPacket(env, nil, nil))
			// Drain local send completions so the CQ ring never fills.
			c0.Poll(func(transport.CQE) {}, 64)
		}
	}()
	next := uint32(0)
	for next < total {
		e := poll1(t, c1)
		if e.Kind != transport.CQERecv {
			continue
		}
		if got := e.Packet.Envelope().Seq; got != next {
			t.Fatalf("out of order: got seq %d, want %d (TCP must preserve FIFO)", got, next)
		}
		next++
	}
	wg.Wait()
}

func TestCapsAndUnsupportedOps(t *testing.T) {
	d0, _, c0, _ := newPair(t)
	caps := d0.Caps()
	if caps.Name != "tcp" || !caps.Lossless || caps.OneSided || caps.FaultInjection || !caps.Multiplexed {
		t.Fatalf("caps = %+v", caps)
	}
	if got := caps.String(); got != "lossless,mux" {
		t.Fatalf("caps string = %q", got)
	}
	r := d0.RegisterMemory(make([]byte, 8))
	if err := c0.Put(r, 0, []byte{1}, nil); !errors.Is(err, transport.ErrNotSupported) {
		t.Fatalf("Put err = %v", err)
	}
	ep, err := d0.Connect(c0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := ep.PutRegion(r.ID(), 0, []byte{1}, nil); !errors.Is(err, transport.ErrNotSupported) {
		t.Fatalf("PutRegion err = %v", err)
	}
}

func TestFaultConfigRefused(t *testing.T) {
	nets, err := NewLoopback(1)
	if err != nil {
		t.Fatal(err)
	}
	_, err = nets[0].NewDevice(0, hw.Fast(), transport.DeviceConfig{
		Faults: transport.FaultConfig{Drop: 0.1},
	})
	if !errors.Is(err, transport.ErrNotSupported) {
		t.Fatalf("err = %v, want ErrNotSupported", err)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Size: 0}); err == nil {
		t.Fatal("Size 0 accepted")
	}
	if _, err := New(Config{Rank: 2, Size: 2, Listen: "127.0.0.1:0", Peers: []string{"a", "b"}}); err == nil {
		t.Fatal("out-of-range rank accepted")
	}
	if _, err := New(Config{Rank: 0, Size: 2, Listen: "127.0.0.1:0", Peers: []string{"a"}}); err == nil {
		t.Fatal("short peer list accepted")
	}
	n, err := New(Config{Rank: 0, Size: 1})
	if err != nil {
		t.Fatalf("single-process world: %v", err)
	}
	d, err := n.NewDevice(0, hw.Fast(), transport.DeviceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.NewDevice(0, hw.Fast(), transport.DeviceConfig{}); err == nil {
		t.Fatal("duplicate device accepted")
	}
	d.Close()
}

func TestClockSyncHandshake(t *testing.T) {
	d0, d1, c0, _ := newPair(t)
	ep, err := d0.Connect(c0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Establishment is lazy: the handshake (and its clock sample) happens on
	// the first send, not at Connect.
	if err := ep.Send(transport.NewPacket(transport.Envelope{Kind: transport.KindEager}, nil, nil)); err != nil {
		t.Fatal(err)
	}
	cs0, ok := d0.(transport.ClockSync)
	if !ok {
		t.Fatal("tcpnet device does not implement transport.ClockSync")
	}
	// The dialer has its sample as soon as the first send returns.
	off01, ok := cs0.PeerClockOffsetNs(1)
	if !ok {
		t.Fatal("dialer has no clock estimate for its peer")
	}
	if self, ok := cs0.PeerClockOffsetNs(0); !ok || self != 0 {
		t.Fatalf("self offset = %d, %v; want 0, true", self, ok)
	}
	if _, ok := cs0.PeerClockOffsetNs(7); ok {
		t.Fatal("estimate reported for a rank never contacted")
	}
	// The server side learns the offset from the third handshake frame;
	// wait out the reader goroutine.
	cs1 := d1.(transport.ClockSync)
	var off10 int64
	deadline := time.Now().Add(2 * time.Second)
	for {
		var ok bool
		if off10, ok = cs1.PeerClockOffsetNs(0); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never recorded the dialer's clock sample")
		}
		time.Sleep(time.Millisecond)
	}
	// Both processes share one physical clock here, so the estimates must be
	// near zero and antisymmetric: offset(0→1) ≈ −offset(1→0), both within
	// the loopback round trip of the true value (0).
	const tol = int64(50 * time.Millisecond)
	if off01 > tol || off01 < -tol {
		t.Fatalf("loopback offset 0→1 = %dns, want ≈0", off01)
	}
	if sum := off01 + off10; sum > tol || sum < -tol {
		t.Fatalf("offsets not antisymmetric: %d + %d = %d", off01, off10, sum)
	}
}

func TestReconnectAfterPeerConnDrop(t *testing.T) {
	nets, err := NewLoopback(2)
	if err != nil {
		t.Fatal(err)
	}
	ctr := spc.NewSet()
	d0, err := nets[0].NewDevice(0, hw.Fast(), transport.DeviceConfig{Counters: ctr})
	if err != nil {
		t.Fatal(err)
	}
	d1, err := nets[1].NewDevice(1, hw.Fast(), transport.DeviceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d0.Close(); d1.Close() })
	c0, err := d0.CreateContext(0)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := d1.CreateContext(0)
	if err != nil {
		t.Fatal(err)
	}
	ep, err := d0.Connect(c0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	send := func(tag int32, payload string) {
		env := transport.Envelope{Src: 0, Dst: 1, Tag: tag, Kind: transport.KindEager}
		ep.Send(transport.NewPacket(env, []byte(payload), nil))
		c0.Poll(func(transport.CQE) {}, 8)
	}
	recv := func(wantTag int32, wantPayload string) {
		deadline := time.Now().Add(5 * time.Second)
		for {
			var got *transport.Packet
			c1.Poll(func(e transport.CQE) {
				if e.Kind == transport.CQERecv {
					got = e.Packet
				}
			}, 8)
			if got != nil {
				env := got.Envelope()
				if env.Tag != wantTag || string(got.Payload) != wantPayload {
					t.Fatalf("got tag=%d payload=%q, want tag=%d payload=%q",
						env.Tag, got.Payload, wantTag, wantPayload)
				}
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("packet tag=%d never arrived", wantTag)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
	send(1, "before")
	recv(1, "before")
	// Kill the established shared link out from under the endpoint. The next
	// write fails, triggering the one-shot reconnect path.
	s := &nets[0].slots[1]
	s.mu.Lock()
	s.link.conn.Close()
	s.mu.Unlock()
	// The failed write may be silently accepted by the kernel buffer once
	// before the RST surfaces; keep sending until the reconnect happens.
	deadline := time.Now().Add(5 * time.Second)
	for ctr.Get(spc.Reconnects) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("reconnect never happened")
		}
		send(2, "after")
		time.Sleep(time.Millisecond)
	}
	recv(2, "after")
	if got := ctr.Get(spc.Reconnects); got < 1 {
		t.Fatalf("reconnects = %d, want >= 1", got)
	}
}

func TestParsePeers(t *testing.T) {
	peers, err := ParsePeers(" 127.0.0.1:7100 ,127.0.0.1:7101,	127.0.0.1:7102")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"127.0.0.1:7100", "127.0.0.1:7101", "127.0.0.1:7102"}
	if len(peers) != len(want) {
		t.Fatalf("got %d peers, want %d", len(peers), len(want))
	}
	for i := range want {
		if peers[i] != want[i] {
			t.Fatalf("peers[%d] = %q, want %q (whitespace must be trimmed)", i, peers[i], want[i])
		}
	}
	if _, err := ParsePeers("a:1,b:2,a:1"); err == nil {
		t.Fatal("duplicate address accepted")
	} else if !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate error not descriptive: %v", err)
	}
	if _, err := ParsePeers("a:1,,b:2"); err == nil {
		t.Fatal("empty address accepted")
	}
}

// TestMultiplexedContextsShareOneConn proves the tentpole property: every
// context of a peer pair shares one physical connection, demultiplexed by
// the frame's mux ID.
func TestMultiplexedContextsShareOneConn(t *testing.T) {
	nets, err := NewLoopback(2)
	if err != nil {
		t.Fatal(err)
	}
	ctr := spc.NewSet()
	d0, err := nets[0].NewDevice(0, hw.Fast(), transport.DeviceConfig{Counters: ctr})
	if err != nil {
		t.Fatal(err)
	}
	d1, err := nets[1].NewDevice(1, hw.Fast(), transport.DeviceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d0.Close(); d1.Close() })
	c0a, _ := d0.CreateContext(0)
	c0b, _ := d0.CreateContext(0)
	r0, _ := d1.CreateContext(0)
	r1, _ := d1.CreateContext(0)
	epA, err := d0.Connect(c0a, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	epB, err := d0.Connect(c0b, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	send := func(ep transport.Endpoint, tag int32) {
		env := transport.Envelope{Src: 0, Dst: 1, Tag: tag, Kind: transport.KindEager}
		if err := ep.Send(transport.NewPacket(env, nil, nil)); err != nil {
			t.Fatal(err)
		}
	}
	send(epA, 10)
	send(epB, 11)
	// Demux: each frame lands in the context its mux ID names.
	if e := poll1(t, r0); e.Packet.Envelope().Tag != 10 {
		t.Fatalf("context 0 got tag %d, want 10", e.Packet.Envelope().Tag)
	}
	if e := poll1(t, r1); e.Packet.Envelope().Tag != 11 {
		t.Fatalf("context 1 got tag %d, want 11", e.Packet.Envelope().Tag)
	}
	// One physical dial, one reuse.
	if got := ctr.Get(spc.ConnsOpened); got != 1 {
		t.Fatalf("conns_opened = %d, want 1 (contexts must share the connection)", got)
	}
	if got := ctr.Get(spc.ConnsReused); got != 1 {
		t.Fatalf("conns_reused = %d, want 1", got)
	}
	// The dialing side registered exactly one outbound connection.
	nets[0].mu.Lock()
	dialed := len(nets[0].conns)
	nets[0].mu.Unlock()
	if dialed != 1 {
		t.Fatalf("rank 0 holds %d connections, want 1", dialed)
	}
}

// TestDialRaceResolutionDeterministic drives the symmetric-dial race
// resolution directly: rank 1 (higher) holds an established link, then rank
// 0's dial arrives — the lower rank's dial must win, rank 1 adopting the
// inbound connection, discarding its own, and counting DialRacesLost.
func TestDialRaceResolutionDeterministic(t *testing.T) {
	nets, err := NewLoopback(2)
	if err != nil {
		t.Fatal(err)
	}
	ctr0, ctr1 := spc.NewSet(), spc.NewSet()
	d0, err := nets[0].NewDevice(0, hw.Fast(), transport.DeviceConfig{Counters: ctr0})
	if err != nil {
		t.Fatal(err)
	}
	d1, err := nets[1].NewDevice(1, hw.Fast(), transport.DeviceConfig{Counters: ctr1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d0.Close(); d1.Close() })
	c0, _ := d0.CreateContext(0)
	c1, _ := d1.CreateContext(0)
	ep0, err := d0.Connect(c0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	ep1, err := d1.Connect(c1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	send := func(ep transport.Endpoint, tag int32) {
		t.Helper()
		env := transport.Envelope{Tag: tag, Kind: transport.KindEager}
		if err := ep.Send(transport.NewPacket(env, nil, nil)); err != nil {
			t.Fatal(err)
		}
	}
	recv := func(c transport.Context, wantTag int32) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			var got *transport.Packet
			c.Poll(func(e transport.CQE) {
				if e.Kind == transport.CQERecv {
					got = e.Packet
				}
			}, 8)
			if got != nil {
				if tag := got.Envelope().Tag; tag != wantTag {
					t.Fatalf("got tag %d, want %d", tag, wantTag)
				}
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("tag %d never arrived", wantTag)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
	// Rank 1 establishes first: it dials, rank 0 adopts the inbound conn.
	send(ep1, 1)
	recv(c0, 1)
	if got := ctr1.Get(spc.ConnsOpened); got != 1 {
		t.Fatalf("rank 1 conns_opened = %d, want 1", got)
	}
	// Force rank 0 to dial as if its own dial had raced: mark its adopted
	// link broken (without closing the socket rank 1 still writes on).
	s := &nets[0].slots[1]
	s.mu.Lock()
	s.link.broken.Store(true)
	s.mu.Unlock()
	// Rank 0's next send dials. Rank 1's accept side sees a hello from a
	// lower rank while holding a live link: adopt, discard, count the loss.
	send(ep0, 2)
	recv(c1, 2)
	deadline := time.Now().Add(5 * time.Second)
	for ctr1.Get(spc.DialRacesLost) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("rank 1 never counted its lost dial race")
		}
		time.Sleep(time.Millisecond)
	}
	if got := ctr0.Get(spc.ConnsOpened); got != 1 {
		t.Fatalf("rank 0 conns_opened = %d, want 1", got)
	}
	if got := ctr0.Get(spc.DialRacesLost); got != 0 {
		t.Fatalf("rank 0 dial_races_lost = %d, want 0 (the lower rank wins)", got)
	}
	// Traffic converges onto the surviving connection in both directions.
	send(ep1, 3)
	recv(c0, 3)
	send(ep0, 4)
	recv(c1, 4)
	opened := ctr0.Get(spc.ConnsOpened) + ctr1.Get(spc.ConnsOpened)
	lost := ctr0.Get(spc.DialRacesLost) + ctr1.Get(spc.DialRacesLost)
	if opened-lost != 1 {
		t.Fatalf("surviving connections = %d − %d = %d, want 1", opened, lost, opened-lost)
	}
}

// TestConcurrentFirstSendsConverge fires the two sides' first sends
// concurrently, so the dials may genuinely race, and asserts the invariant
// either way: exactly one surviving connection per pair and delivery in
// both directions.
func TestConcurrentFirstSendsConverge(t *testing.T) {
	for iter := 0; iter < 10; iter++ {
		nets, err := NewLoopback(2)
		if err != nil {
			t.Fatal(err)
		}
		ctr0, ctr1 := spc.NewSet(), spc.NewSet()
		d0, err := nets[0].NewDevice(0, hw.Fast(), transport.DeviceConfig{Counters: ctr0})
		if err != nil {
			t.Fatal(err)
		}
		d1, err := nets[1].NewDevice(1, hw.Fast(), transport.DeviceConfig{Counters: ctr1})
		if err != nil {
			t.Fatal(err)
		}
		c0, _ := d0.CreateContext(0)
		c1, _ := d1.CreateContext(0)
		ep0, err := d0.Connect(c0, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		ep1, err := d1.Connect(c1, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for _, ep := range []transport.Endpoint{ep0, ep1} {
			wg.Add(1)
			go func(ep transport.Endpoint) {
				defer wg.Done()
				env := transport.Envelope{Tag: 9, Kind: transport.KindEager}
				if err := ep.Send(transport.NewPacket(env, nil, nil)); err != nil {
					t.Error(err)
				}
			}(ep)
		}
		wg.Wait()
		for _, c := range []transport.Context{c0, c1} {
			got := 0
			deadline := time.Now().Add(5 * time.Second)
			for got < 2 { // one send completion + one inbound packet
				got += c.Poll(func(transport.CQE) {}, 8)
				if time.Now().After(deadline) {
					t.Fatal("delivery never converged after racing dials")
				}
			}
		}
		opened := ctr0.Get(spc.ConnsOpened) + ctr1.Get(spc.ConnsOpened)
		lost := ctr0.Get(spc.DialRacesLost) + ctr1.Get(spc.DialRacesLost)
		if opened-lost != 1 {
			t.Fatalf("iter %d: surviving connections = %d − %d = %d, want exactly 1",
				iter, opened, lost, opened-lost)
		}
		d0.Close()
		d1.Close()
	}
}
