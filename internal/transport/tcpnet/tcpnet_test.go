package tcpnet

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/hw"
	"repro/internal/transport"
)

func newPair(t *testing.T) (d0, d1 transport.Device, c0, c1 transport.Context) {
	t.Helper()
	nets, err := NewLoopback(2)
	if err != nil {
		t.Fatal(err)
	}
	d0, err = nets[0].NewDevice(0, hw.Fast(), transport.DeviceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	d1, err = nets[1].NewDevice(1, hw.Fast(), transport.DeviceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d0.Close(); d1.Close() })
	c0, err = d0.CreateContext(0)
	if err != nil {
		t.Fatal(err)
	}
	c1, err = d1.CreateContext(0)
	if err != nil {
		t.Fatal(err)
	}
	return d0, d1, c0, c1
}

func poll1(t *testing.T, c transport.Context) transport.CQE {
	t.Helper()
	for i := 0; i < 1_000_000; i++ {
		var got *transport.CQE
		if c.Poll(func(e transport.CQE) { got = &e }, 1) > 0 {
			return *got
		}
	}
	t.Fatal("no completion arrived")
	return transport.CQE{}
}

func TestSendAcrossProcessesBoundary(t *testing.T) {
	d0, _, c0, c1 := newPair(t)
	ep, err := d0.Connect(c0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	env := transport.Envelope{Src: 0, Dst: 1, Tag: 7, Kind: transport.KindEager}
	pkt := transport.NewPacket(env, []byte("over the wire"), nil)
	pkt.RelSeq, pkt.RelSrc = 42, 0
	ep.Send(pkt)

	if e := poll1(t, c0); e.Kind != transport.CQESendComplete {
		t.Fatalf("local completion kind = %v", e.Kind)
	}
	e := poll1(t, c1)
	if e.Kind != transport.CQERecv {
		t.Fatalf("remote completion kind = %v", e.Kind)
	}
	got := e.Packet.Envelope()
	if got.Tag != 7 || string(e.Packet.Payload) != "over the wire" {
		t.Fatalf("packet corrupted: tag=%d payload=%q", got.Tag, e.Packet.Payload)
	}
	if e.Packet.RelSeq != 42 {
		t.Fatalf("driver metadata lost: RelSeq=%d", e.Packet.RelSeq)
	}
	if e.Packet.Token != nil {
		t.Fatal("token must not cross the wire")
	}
}

func TestLoopbackEndpointSameRank(t *testing.T) {
	d0, _, c0, _ := newPair(t)
	ep, err := d0.Connect(c0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	ep.Send(transport.NewPacket(transport.Envelope{Kind: transport.KindEager}, []byte("self"), nil))
	seen := 0
	for seen < 2 {
		e := poll1(t, c0)
		if e.Kind == transport.CQERecv && string(e.Packet.Payload) != "self" {
			t.Fatalf("payload = %q", e.Packet.Payload)
		}
		seen++
	}
}

func TestManyPacketsFIFO(t *testing.T) {
	d0, _, c0, c1 := newPair(t)
	ep, err := d0.Connect(c0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	const total = 5000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < total; i++ {
			env := transport.Envelope{Src: 0, Dst: 1, Seq: uint32(i), Kind: transport.KindEager}
			ep.Send(transport.NewPacket(env, nil, nil))
			// Drain local send completions so the CQ ring never fills.
			c0.Poll(func(transport.CQE) {}, 64)
		}
	}()
	next := uint32(0)
	for next < total {
		e := poll1(t, c1)
		if e.Kind != transport.CQERecv {
			continue
		}
		if got := e.Packet.Envelope().Seq; got != next {
			t.Fatalf("out of order: got seq %d, want %d (TCP must preserve FIFO)", got, next)
		}
		next++
	}
	wg.Wait()
}

func TestCapsAndUnsupportedOps(t *testing.T) {
	d0, _, c0, _ := newPair(t)
	caps := d0.Caps()
	if caps.Name != "tcp" || !caps.Lossless || caps.OneSided || caps.FaultInjection {
		t.Fatalf("caps = %+v", caps)
	}
	if got := caps.String(); got != "lossless" {
		t.Fatalf("caps string = %q", got)
	}
	r := d0.RegisterMemory(make([]byte, 8))
	if err := c0.Put(r, 0, []byte{1}, nil); !errors.Is(err, transport.ErrNotSupported) {
		t.Fatalf("Put err = %v", err)
	}
	ep, err := d0.Connect(c0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := ep.PutRegion(r.ID(), 0, []byte{1}, nil); !errors.Is(err, transport.ErrNotSupported) {
		t.Fatalf("PutRegion err = %v", err)
	}
}

func TestFaultConfigRefused(t *testing.T) {
	nets, err := NewLoopback(1)
	if err != nil {
		t.Fatal(err)
	}
	_, err = nets[0].NewDevice(0, hw.Fast(), transport.DeviceConfig{
		Faults: transport.FaultConfig{Drop: 0.1},
	})
	if !errors.Is(err, transport.ErrNotSupported) {
		t.Fatalf("err = %v, want ErrNotSupported", err)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Size: 0}); err == nil {
		t.Fatal("Size 0 accepted")
	}
	if _, err := New(Config{Rank: 2, Size: 2, Listen: "127.0.0.1:0", Peers: []string{"a", "b"}}); err == nil {
		t.Fatal("out-of-range rank accepted")
	}
	if _, err := New(Config{Rank: 0, Size: 2, Listen: "127.0.0.1:0", Peers: []string{"a"}}); err == nil {
		t.Fatal("short peer list accepted")
	}
	n, err := New(Config{Rank: 0, Size: 1})
	if err != nil {
		t.Fatalf("single-process world: %v", err)
	}
	d, err := n.NewDevice(0, hw.Fast(), transport.DeviceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.NewDevice(0, hw.Fast(), transport.DeviceConfig{}); err == nil {
		t.Fatal("duplicate device accepted")
	}
	d.Close()
}
