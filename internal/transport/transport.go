package transport

import (
	"errors"
	"strings"
	"time"

	"repro/internal/hw"
	"repro/internal/spc"
)

// ErrNotSupported is returned by backends for operations outside their
// capability set (e.g. one-sided ops on a send/recv-only wire). Callers
// should consult Caps before issuing such operations.
var ErrNotSupported = errors.New("transport: operation not supported by backend")

// ErrRegionUnavailable reports a one-sided operation addressing a region
// the target has deregistered (or never registered).
var ErrRegionUnavailable = errors.New("transport: remote memory region unavailable")

// ErrNoEndpoint reports a send toward a peer for which no endpoint was
// wired — on a real network the analog of an unreachable address.
var ErrNoEndpoint = errors.New("transport: no endpoint to peer")

// ErrConnEstablish reports that lazy connection establishment failed on
// first use of an endpoint: the dial (or the deferred resolution of a
// simulated peer) could not produce a usable physical connection. The send
// that triggered establishment was not injected.
var ErrConnEstablish = errors.New("transport: connection establishment failed")

// Caps describes what a backend can do. The runtime consults it at world
// construction: a lossless backend skips the ack/retransmit delivery layer,
// a backend without one-sided support routes rendezvous bulk data through
// the FIN control message instead of an RDMA write, and fault injection is
// refused by backends that cannot honor it.
type Caps struct {
	// Name identifies the backend ("sim", "tcp", ...).
	Name string
	// Lossless means delivery is reliable and per-endpoint FIFO (e.g. a
	// TCP stream): the delivery-reliability layer's retransmit bookkeeping
	// is unnecessary and is skipped.
	Lossless bool
	// OneSided means remote memory regions are addressable by peers
	// (Endpoint.PutRegion and the Context RMA initiators work).
	OneSided bool
	// FaultInjection means the backend honors DeviceConfig fault and
	// scramble settings.
	FaultInjection bool
	// Multiplexed means all of a peer pair's contexts share one physical
	// connection, demultiplexed by the context-mux ID in the wire framing,
	// and that connections are established lazily on first send rather than
	// at world construction. Endpoints of such backends may return
	// ErrConnEstablish from Send when the deferred dial fails.
	Multiplexed bool
}

// String renders the capability set for self-describing results files,
// e.g. "lossless" or "one-sided,faults".
func (c Caps) String() string {
	var parts []string
	if c.Lossless {
		parts = append(parts, "lossless")
	}
	if c.OneSided {
		parts = append(parts, "one-sided")
	}
	if c.FaultInjection {
		parts = append(parts, "faults")
	}
	if c.Multiplexed {
		parts = append(parts, "mux")
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// ClockSync is optionally implemented by distributed backends that estimate
// peer clock offsets (tcpnet takes NTP-style samples during its connection
// handshake). The runtime uses it to correct cross-process send timestamps
// into the local clock domain for one-way latency measurement, and to
// express trace shards on a common timeline. In-process backends share one
// clock and simply do not implement the interface (offset zero).
type ClockSync interface {
	// PeerClockOffsetNs returns the estimated difference between this
	// process's clock and peer's clock (local − peer) in nanoseconds, and
	// whether an estimate exists. A timestamp t taken on peer's clock maps
	// to the local clock as t + offset.
	PeerClockOffsetNs(peer int) (int64, bool)
}

// FaultConfig parameterizes wire-fault injection on backends that support
// it. All probabilities are per-packet and independent; a packet is first
// tested for drop, then (if it survived) for duplication and delay. The
// zero value injects nothing.
type FaultConfig struct {
	// Drop is the probability a packet vanishes on the wire. The sender
	// still observes local send completion — exactly like real hardware,
	// which reports the DMA done long before the packet survives the
	// network.
	Drop float64
	// Dup is the probability a packet is delivered twice.
	Dup float64
	// Delay is the probability a packet is held back for DelayDur before
	// delivery (a slow path through the switch), reordering it past later
	// traffic.
	Delay float64
	// DelayDur is how long a delayed packet is held (0 = 200µs).
	DelayDur time.Duration
	// Seed seeds the deterministic RNG (0 = 1).
	Seed int64
}

// DefaultFaultDelay is the hold time of a delayed packet when
// FaultConfig.DelayDur is unset.
const DefaultFaultDelay = 200 * time.Microsecond

// Enabled reports whether any fault has a non-zero probability.
func (c FaultConfig) Enabled() bool {
	return c.Drop > 0 || c.Dup > 0 || c.Delay > 0
}

// WithDefaults normalizes zero values.
func (c FaultConfig) WithDefaults() FaultConfig {
	if c.DelayDur <= 0 {
		c.DelayDur = DefaultFaultDelay
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// DeviceConfig carries the per-rank device settings a consumer passes at
// creation time.
type DeviceConfig struct {
	// Counters receives backend-level counter increments (injected faults,
	// wire errors). May be nil.
	Counters *spc.Set
	// ScrambleWindow, when positive, requests adversarial delivery-order
	// scrambling within a window of this many packets. Honored only when
	// Caps.FaultInjection.
	ScrambleWindow int
	// ScrambleSeed seeds the scrambler (0 = 1).
	ScrambleSeed int64
	// Faults requests wire-fault injection. Honored only when
	// Caps.FaultInjection.
	Faults FaultConfig
}

// Network creates the devices of one world — the backend entry point.
// In-process backends (the simulated fabric) create one device per rank and
// wire them internally; distributed backends (tcpnet) serve only the local
// process's rank and reach peers over real connections.
type Network interface {
	// Caps describes the backend.
	Caps() Caps
	// NewDevice creates the device for world rank r on machine model m.
	NewDevice(rank int, m hw.Machine, cfg DeviceConfig) (Device, error)
}

// Device is one process's NIC: a context factory plus the registered-memory
// table remote peers address with one-sided operations.
type Device interface {
	// Machine returns the device's machine model.
	Machine() hw.Machine
	// Caps describes the owning backend.
	Caps() Caps
	// CreateContext allocates a new network context with the given queue
	// depth (<= 0 selects the backend default). Backends modeling a
	// hardware context limit fail once it is exhausted.
	CreateContext(depth int) (Context, error)
	// Connect returns an endpoint from local (a context of this device) to
	// context index remoteIdx of peer rank's device.
	Connect(local Context, peer int, remoteIdx int) (Endpoint, error)
	// RegisterMemory registers buf for one-sided access and returns its
	// region. On backends without OneSided caps the region is only locally
	// addressable (the rendezvous sink bookkeeping still uses it).
	RegisterMemory(buf []byte) MemRegion
	// DeregisterMemory removes a region from visibility.
	DeregisterMemory(r MemRegion)
	// Region looks up a registered region by id.
	Region(id uint64) (MemRegion, bool)
	// Close shuts the device down. Outstanding contexts remain readable so
	// in-flight progress loops can drain.
	Close()
}

// Context is one network context: an independent injection path into the
// NIC with its own receive queue and completion queue. A Communication
// Resource Instance (CRI) wraps exactly one Context.
//
// Thread safety: packet arrival and the RMA initiators may run concurrently
// (the queues are multi-producer). Poll must be called by one goroutine at
// a time; the layers above guarantee this with the per-CRI lock the paper
// describes.
type Context interface {
	// Index returns the context's index within its device.
	Index() int
	// Poll extracts up to max completion events, invoking handler for
	// each, and returns the number handled. Inbound packets surface as
	// CQERecv events.
	Poll(handler func(CQE), max int) int
	// Pending reports whether any completions or inbound packets are
	// queued.
	Pending() bool

	// One-sided initiators (OneSided backends only; others return
	// ErrNotSupported). r addresses a region of the target device;
	// completion is a local CQE carrying token.
	Put(r MemRegion, offset int, src []byte, token any) error
	Get(r MemRegion, offset int, dst []byte, token any) error
	Accumulate(r MemRegion, offset int, operand []int64, op AccumulateOp, token any) error
	FetchAndOp(r MemRegion, offset int, operand int64, op AccumulateOp, result *int64, token any) error
	CompareAndSwap(r MemRegion, offset int, compare, swap int64, result *int64, token any) error
}

// Endpoint is a send path from a local context to one remote context. The
// layers above serialize Send with the per-CRI lock on matched paths;
// control paths may call it concurrently, so implementations must make
// injection itself thread-safe (the simulated fabric's queues are
// multi-producer; tcpnet serializes frame writes per connection).
type Endpoint interface {
	// Send injects a two-sided packet and posts a send-completion CQE to
	// the local context. On Multiplexed backends the first Send may have to
	// establish the physical connection; a failed establishment surfaces as
	// an error wrapping ErrConnEstablish and the packet is not injected.
	// Lossless backends may also report a definitive wire failure here.
	Send(p *Packet) error
	// Resend re-injects a packet without a new send-completion CQE — the
	// retransmission path of the delivery-reliability layer. Errors carry
	// the same meaning as Send's; the reliability layer treats a failed
	// resend like a lost packet (the retry budget governs).
	Resend(p *Packet) error
	// PutRegion writes src into the peer's registered region at offset (an
	// RDMA write addressed by region id). Requires Caps.OneSided; returns
	// ErrRegionUnavailable when the target tore the region down.
	PutRegion(regionID uint64, offset int, src []byte, token any) error
}

// MemRegion is a registered memory region — the transport-level object
// behind an MPI window or a rendezvous sink.
type MemRegion interface {
	// ID returns the region's registration id.
	ID() uint64
	// Size returns the region length in bytes.
	Size() int
	// Bytes exposes the underlying buffer (local access for the owner).
	Bytes() []byte
}

// AccumulateOp selects the reduction applied by Accumulate and FetchAndOp.
type AccumulateOp uint8

const (
	// AccSum adds the operand to the target (MPI_SUM).
	AccSum AccumulateOp = iota
	// AccReplace overwrites the target (MPI_REPLACE).
	AccReplace
	// AccMax keeps the maximum (MPI_MAX).
	AccMax
	// AccMin keeps the minimum (MPI_MIN).
	AccMin
)
