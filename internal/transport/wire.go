// Package transport defines the pluggable transport layer beneath the
// runtime's Communication Resource Instances: the wire contracts every
// backend speaks (Envelope, Packet, CQE) and the small interface a backend
// must implement (Network, Device, Context, Endpoint).
//
// The CRI design the paper builds on — one network context, one completion
// queue, one endpoint table per instance, protected by one per-instance
// lock — is backend-independent: the same locking discipline maps onto any
// provider (Zambre et al.'s scalable-endpoints line of work). This package
// captures exactly what the message path above needs: inject, poll/drain a
// CQ, resend, one-sided ops, and fault hooks. internal/fabric is the
// default simulated backend; internal/transport/tcpnet carries the same
// stack over real TCP connections between OS processes.
package transport

import (
	"encoding/binary"
	"fmt"
)

// EnvelopeSize is the wire footprint of the matching header. The paper
// notes Open MPI's matching header is ~28 bytes; zero-byte "messages" in the
// Multirate benchmark are pure envelopes.
const EnvelopeSize = 28

// Envelope is the matching header carried by every two-sided message.
type Envelope struct {
	Src  int32  // sender rank
	Dst  int32  // destination rank
	Tag  int32  // message tag
	Comm uint32 // communicator context id
	Seq  uint32 // per-(sender, communicator) sequence number
	Len  uint32 // payload length in bytes
	Kind Kind   // packet kind (low byte) and flags
}

// Kind discriminates packet types on the wire. The low byte is the packet
// kind; the bits above it are per-packet wire flags. In-memory envelopes
// (Envelope.Kind) carry only the base kind — flags are applied when a
// packet is framed for a real wire (AppendWire) and stripped when it is
// decoded (DecodePacket), so the layers above the transport never see them.
type Kind uint32

// KindMask selects the base packet kind from a wire Kind word.
const KindMask Kind = 0xff

// FlagTraced marks a packet carrying the optional trace-context extension
// header: trace id, origin rank, and send timestamp ride the wire after the
// canonical 28-byte envelope. When tracing is off the flag is never set and
// the wire format is byte-identical to the paper-faithful framing.
const FlagTraced Kind = 1 << 8

// Base strips the wire flags, returning the packet kind alone.
func (k Kind) Base() Kind { return k & KindMask }

// Traced reports whether the trace-context extension flag is set.
func (k Kind) Traced() bool { return k&FlagTraced != 0 }

const (
	// KindEager is a two-sided eager message: envelope plus full payload.
	KindEager Kind = iota + 1
	// KindRendezvousRTS is the ready-to-send control message of the
	// rendezvous protocol for large payloads.
	KindRendezvousRTS
	// KindRendezvousACK is the receiver's clear-to-send response carrying
	// the registered sink region.
	KindRendezvousACK
	// KindRendezvousData is the bulk-data / FIN control message of a
	// rendezvous transfer. On one-sided-capable backends it carries only
	// the transfer id (the data traveled by RDMA write); on send/recv-only
	// backends it carries the data itself.
	KindRendezvousData
	// KindAck is a delivery-reliability acknowledgement: a cumulative ack
	// plus a selective-ack bitmap for one sender→receiver transport stream.
	KindAck
)

// Marshal encodes the envelope into its 28-byte wire form. The encode cost
// is real work the injecting core performs, exactly like a driver building
// a packet header.
func (e *Envelope) Marshal(b *[EnvelopeSize]byte) {
	binary.LittleEndian.PutUint32(b[0:], uint32(e.Src))
	binary.LittleEndian.PutUint32(b[4:], uint32(e.Dst))
	binary.LittleEndian.PutUint32(b[8:], uint32(e.Tag))
	binary.LittleEndian.PutUint32(b[12:], e.Comm)
	binary.LittleEndian.PutUint32(b[16:], e.Seq)
	binary.LittleEndian.PutUint32(b[20:], e.Len)
	binary.LittleEndian.PutUint32(b[24:], uint32(e.Kind))
}

// Unmarshal decodes a 28-byte wire header.
func (e *Envelope) Unmarshal(b *[EnvelopeSize]byte) {
	e.Src = int32(binary.LittleEndian.Uint32(b[0:]))
	e.Dst = int32(binary.LittleEndian.Uint32(b[4:]))
	e.Tag = int32(binary.LittleEndian.Uint32(b[8:]))
	e.Comm = binary.LittleEndian.Uint32(b[12:])
	e.Seq = binary.LittleEndian.Uint32(b[16:])
	e.Len = binary.LittleEndian.Uint32(b[20:])
	e.Kind = Kind(binary.LittleEndian.Uint32(b[24:]))
}

func (e Envelope) String() string {
	return fmt.Sprintf("env{src=%d dst=%d tag=%d comm=%d seq=%d len=%d kind=%d}",
		e.Src, e.Dst, e.Tag, e.Comm, e.Seq, e.Len, e.Kind)
}

// Packet is one message on the wire: a marshaled envelope plus an owned
// copy of the payload (eager protocol semantics — the sender's buffer is
// free as soon as injection returns).
type Packet struct {
	header  [EnvelopeSize]byte
	Payload []byte
	// Token is opaque sender state echoed in the send-completion CQE,
	// typically the request to mark complete. It never crosses the wire.
	Token any
	// Stamp is an optional injection timestamp (UnixNano) set by the
	// telemetry layer to measure inject-to-match latency; 0 = unstamped.
	// It rides the packet but is not part of the wire envelope, exactly
	// like driver-private metadata on a real send WQE.
	Stamp int64
	// RelSeq is the transport-level sequence number assigned by the
	// delivery-reliability layer when it is enabled; 0 = untracked. Like
	// Stamp it is driver-private metadata, not part of the wire envelope.
	RelSeq uint64
	// RelSrc is the sender's world rank for reliability tracking when
	// RelSeq != 0 (the envelope's Src is communicator-relative).
	RelSrc int32
	// TraceID is the message-lifecycle trace id (0 = untraced). A non-zero
	// id marks the packet for cross-rank lifecycle stitching: real wires
	// frame it in the trace-context extension header (FlagTraced), and the
	// receiver's trace events carry it as their flow id.
	TraceID uint64
	// Origin is the sender's world rank for trace attribution when
	// TraceID != 0 (the envelope's Src is communicator-relative).
	Origin int32
	// RecvStamp is the receiver-local arrival timestamp (UnixNano) set by
	// the delivery path to measure match-queue residency; 0 = unstamped.
	// Receiver-private — it never crosses the wire.
	RecvStamp int64
	// SendAcqNs and SendWireNs are the sender's critical-path stage
	// durations (send post to CRI acquired; CRI acquired to injection
	// complete), set by the latency-attribution layer BEFORE injection so
	// in-process receivers read them race-free; 0 = unobserved. Like Stamp
	// they are driver-private and never cross a real wire — a remote
	// receiver sees 0 and marks the stages unknown in its exemplars.
	SendAcqNs  int64
	SendWireNs int64
	// ArriveNs is the receiver-local transport-arrival timestamp (UnixNano,
	// or virtual ns under the simulator), stamped when the packet enters the
	// receive path (socket decode, or simulated receive-queue entry); 0 =
	// unstamped. The gap to RecvStamp is the delivery-wait stage: how long
	// the packet sat before a progress pass extracted it. Receiver-private.
	ArriveNs int64
}

// NewPacket marshals env and copies payload into a fresh packet, setting
// the envelope's Len to the payload length.
func NewPacket(env Envelope, payload []byte, token any) *Packet {
	env.Len = uint32(len(payload))
	return NewPacketRaw(env, payload, token)
}

// NewPacketRaw is NewPacket without overwriting env.Len — control packets
// (e.g. a rendezvous RTS) advertise a length different from their carried
// payload.
func NewPacketRaw(env Envelope, payload []byte, token any) *Packet {
	p := &Packet{Token: token}
	env.Marshal(&p.header)
	if len(payload) > 0 {
		p.Payload = append([]byte(nil), payload...)
	}
	return p
}

// Envelope decodes and returns the packet's header.
func (p *Packet) Envelope() Envelope {
	var e Envelope
	e.Unmarshal(&p.header)
	return e
}

// wireMetaSize is the framed size of the driver metadata a real backend
// carries alongside the envelope: RelSeq (8) + RelSrc (4) + Stamp (8).
const wireMetaSize = 8 + 4 + 8

// TraceExtSize is the framed size of the optional trace-context extension
// header: TraceID (8) + Origin (4) + send Stamp (8). It rides the wire
// directly after the 28-byte envelope, only when FlagTraced is set.
const TraceExtSize = 8 + 4 + 8

// kindOffset is the byte offset of the envelope's Kind word in the header.
const kindOffset = 24

// WireSize returns the number of bytes AppendWire emits for p.
func (p *Packet) WireSize() int {
	n := EnvelopeSize + wireMetaSize + len(p.Payload)
	if p.TraceID != 0 {
		n += TraceExtSize
	}
	return n
}

// AppendWire appends the packet's full wire form — envelope, the optional
// trace-context extension (traced packets only), driver metadata (RelSeq,
// RelSrc, Stamp), payload — to b and returns the extended slice. A traced
// packet's envelope carries FlagTraced in its Kind word on the wire; an
// untraced packet's framing is byte-identical to the canonical format.
// Token never crosses the wire; it is sender-local state.
func (p *Packet) AppendWire(b []byte) []byte {
	if p.TraceID != 0 {
		var hdr [EnvelopeSize]byte
		copy(hdr[:], p.header[:])
		kind := binary.LittleEndian.Uint32(hdr[kindOffset:]) | uint32(FlagTraced)
		binary.LittleEndian.PutUint32(hdr[kindOffset:], kind)
		b = append(b, hdr[:]...)
		var ext [TraceExtSize]byte
		binary.LittleEndian.PutUint64(ext[0:], p.TraceID)
		binary.LittleEndian.PutUint32(ext[8:], uint32(p.Origin))
		binary.LittleEndian.PutUint64(ext[12:], uint64(p.Stamp))
		b = append(b, ext[:]...)
	} else {
		b = append(b, p.header[:]...)
	}
	var meta [wireMetaSize]byte
	binary.LittleEndian.PutUint64(meta[0:], p.RelSeq)
	binary.LittleEndian.PutUint32(meta[8:], uint32(p.RelSrc))
	binary.LittleEndian.PutUint64(meta[12:], uint64(p.Stamp))
	b = append(b, meta[:]...)
	return append(b, p.Payload...)
}

// DecodePacket parses one packet from its AppendWire form, copying the
// payload out of b. The FlagTraced wire flag is consumed here: the decoded
// envelope carries only the base kind, and the extension fields land in
// TraceID/Origin (the ext's send stamp wins over the driver-metadata copy).
func DecodePacket(b []byte) (*Packet, error) {
	if len(b) < EnvelopeSize+wireMetaSize {
		return nil, fmt.Errorf("transport: short packet frame (%d bytes)", len(b))
	}
	p := &Packet{}
	copy(p.header[:], b[:EnvelopeSize])
	rest := b[EnvelopeSize:]
	kind := Kind(binary.LittleEndian.Uint32(p.header[kindOffset:]))
	if kind.Traced() {
		if len(rest) < TraceExtSize+wireMetaSize {
			return nil, fmt.Errorf("transport: short traced packet frame (%d bytes)", len(b))
		}
		binary.LittleEndian.PutUint32(p.header[kindOffset:], uint32(kind&^FlagTraced))
		p.TraceID = binary.LittleEndian.Uint64(rest[0:])
		p.Origin = int32(binary.LittleEndian.Uint32(rest[8:]))
		p.Stamp = int64(binary.LittleEndian.Uint64(rest[12:]))
		rest = rest[TraceExtSize:]
	}
	p.RelSeq = binary.LittleEndian.Uint64(rest[0:])
	p.RelSrc = int32(binary.LittleEndian.Uint32(rest[8:]))
	if s := int64(binary.LittleEndian.Uint64(rest[12:])); p.Stamp == 0 {
		p.Stamp = s
	}
	if rest = rest[wireMetaSize:]; len(rest) > 0 {
		p.Payload = append([]byte(nil), rest...)
	}
	return p, nil
}

// MuxHeaderSize is the framed size of the per-frame multiplexing prefix a
// multiplexed wire carries ahead of the packet: the destination context
// index (the "mux ID") that routes the frame to one of the peer pair's
// shared-connection contexts. It is connection-private framing, not part of
// the packet (WireSize/AppendWire are unchanged), so non-multiplexed
// framings stay byte-identical.
const MuxHeaderSize = 4

// AppendMuxFrame appends a multiplexed wire frame to b: a u32 total-length
// prefix covering [mux header + packet], the u32 mux ID (destination
// context index), then the packet's AppendWire form.
func (p *Packet) AppendMuxFrame(b []byte, mux uint32) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(MuxHeaderSize+p.WireSize()))
	b = binary.LittleEndian.AppendUint32(b, mux)
	return p.AppendWire(b)
}

// DecodeMuxFrame parses the body of a multiplexed frame (everything after
// the length prefix): the mux ID and the packet.
func DecodeMuxFrame(b []byte) (mux uint32, p *Packet, err error) {
	if len(b) < MuxHeaderSize {
		return 0, nil, fmt.Errorf("transport: short mux frame (%d bytes)", len(b))
	}
	mux = binary.LittleEndian.Uint32(b)
	p, err = DecodePacket(b[MuxHeaderSize:])
	return mux, p, err
}

// CQEKind discriminates completion-queue entries.
type CQEKind uint8

const (
	// CQESendComplete reports local completion of an injected send.
	CQESendComplete CQEKind = iota + 1
	// CQERecv reports arrival of a two-sided packet.
	CQERecv
	// CQEPutComplete reports local completion of a one-sided put.
	CQEPutComplete
	// CQEGetComplete reports local completion of a one-sided get.
	CQEGetComplete
	// CQEAccComplete reports local completion of a one-sided accumulate.
	CQEAccComplete
)

// CQE is one completion-queue entry.
type CQE struct {
	Kind   CQEKind
	Packet *Packet // for CQERecv and CQESendComplete
	Token  any     // for one-sided completions: opaque initiator state
}
