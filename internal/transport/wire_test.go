package transport

import (
	"bytes"
	"encoding/binary"
	"testing"
)

func testEnvelope() Envelope {
	return Envelope{Src: 0, Dst: 1, Tag: 7, Comm: 3, Seq: 42, Kind: KindEager}
}

// An untraced packet's framing must be byte-identical to the canonical
// format: 28-byte envelope, 20-byte driver metadata, payload — no trace
// extension, no flag bit.
func TestWireUntracedByteIdentical(t *testing.T) {
	p := NewPacket(testEnvelope(), []byte("abc"), nil)
	p.RelSeq = 9
	p.RelSrc = 2
	p.Stamp = 1234
	got := p.AppendWire(nil)

	var want []byte
	var hdr [EnvelopeSize]byte
	env := testEnvelope()
	env.Len = 3
	env.Marshal(&hdr)
	want = append(want, hdr[:]...)
	var meta [wireMetaSize]byte
	binary.LittleEndian.PutUint64(meta[0:], 9)
	binary.LittleEndian.PutUint32(meta[8:], 2)
	binary.LittleEndian.PutUint64(meta[12:], 1234)
	want = append(want, meta[:]...)
	want = append(want, "abc"...)

	if !bytes.Equal(got, want) {
		t.Fatalf("untraced frame differs from canonical format:\ngot  %x\nwant %x", got, want)
	}
	if got := len(got); got != p.WireSize() {
		t.Fatalf("WireSize=%d, frame is %d bytes", p.WireSize(), got)
	}
	if kind := Kind(binary.LittleEndian.Uint32(got[kindOffset:])); kind.Traced() {
		t.Fatal("untraced frame carries FlagTraced")
	}
}

func TestWireTracedRoundTrip(t *testing.T) {
	p := NewPacket(testEnvelope(), []byte("payload"), nil)
	p.RelSeq = 5
	p.RelSrc = 0
	p.Stamp = 777
	p.TraceID = 0xdeadbeefcafe
	p.Origin = 3
	frame := p.AppendWire(nil)

	if got := len(frame); got != p.WireSize() {
		t.Fatalf("WireSize=%d, frame is %d bytes", p.WireSize(), got)
	}
	if got, want := p.WireSize(), EnvelopeSize+TraceExtSize+wireMetaSize+len("payload"); got != want {
		t.Fatalf("traced WireSize=%d, want %d", got, want)
	}
	if kind := Kind(binary.LittleEndian.Uint32(frame[kindOffset:])); !kind.Traced() {
		t.Fatal("traced frame missing FlagTraced on the wire")
	}

	q, err := DecodePacket(frame)
	if err != nil {
		t.Fatal(err)
	}
	env := q.Envelope()
	if env.Kind != KindEager {
		t.Fatalf("decoded Kind=%v carries flags; want bare KindEager", env.Kind)
	}
	if env.Kind.Traced() {
		t.Fatal("decoded envelope still carries FlagTraced")
	}
	if q.TraceID != p.TraceID || q.Origin != 3 || q.Stamp != 777 {
		t.Fatalf("trace context lost: id=%#x origin=%d stamp=%d", q.TraceID, q.Origin, q.Stamp)
	}
	if string(q.Payload) != "payload" || q.RelSeq != 5 {
		t.Fatalf("payload/meta lost: %q relseq=%d", q.Payload, q.RelSeq)
	}

	// A re-framed decoded packet must reproduce the original bytes (the
	// Resend path re-encodes from the struct).
	if again := q.AppendWire(nil); !bytes.Equal(again, frame) {
		t.Fatalf("re-encode differs:\ngot  %x\nwant %x", again, frame)
	}
}

func TestWireShortTracedFrame(t *testing.T) {
	p := NewPacket(testEnvelope(), nil, nil)
	p.TraceID = 1
	frame := p.AppendWire(nil)
	if _, err := DecodePacket(frame[:EnvelopeSize+4]); err == nil {
		t.Fatal("short traced frame decoded without error")
	}
}

func TestKindFlagHelpers(t *testing.T) {
	k := KindRendezvousRTS | FlagTraced
	if k.Base() != KindRendezvousRTS {
		t.Fatalf("Base()=%v", k.Base())
	}
	if !k.Traced() {
		t.Fatal("Traced()=false on flagged kind")
	}
	if KindEager.Traced() {
		t.Fatal("bare kind reports Traced")
	}
}
