#!/usr/bin/env bash
# Two-process TCP smoke test: run the pairwise Multirate benchmark as two
# real OS processes joined over loopback TCP and check that both halves
# finish with consistent totals — the sender's messages_sent SPC must be
# fully accounted for by the receiver's messages_received.
set -euo pipefail
cd "$(dirname "$0")/.."

bin="$(mktemp -d)/multirate"
go build -o "$bin" ./cmd/multirate

port_base=$((20000 + RANDOM % 20000))
peers="127.0.0.1:${port_base},127.0.0.1:$((port_base + 1))"
args=(-transport tcp -peers "$peers" -pairs 4 -window 64 -iters 4 -machine fast -spcs)

out0="$(mktemp)" out1="$(mktemp)"
"$bin" -rank 1 "${args[@]}" >"$out1" 2>&1 &
recv_pid=$!
"$bin" -rank 0 "${args[@]}" >"$out0" 2>&1
wait "$recv_pid"

field() { grep -o "$2=[^ ]*" "$1" | head -1 | cut -d= -f2; }
counter() { awk -v k="$2" '$1 == k { print $2 }' "$1"; }

msgs0="$(field "$out0" messages)"
msgs1="$(field "$out1" messages)"
sent="$(counter "$out0" messages_sent)"
received="$(counter "$out1" messages_received)"

echo "rank 0: $(head -c 200 <(grep engine= "$out0"))"
echo "rank 1: $(head -c 200 <(grep engine= "$out1"))"

if [[ -z "$msgs0" || "$msgs0" != "$msgs1" ]]; then
    echo "FAIL: header message totals differ (rank0=$msgs0 rank1=$msgs1)" >&2
    exit 1
fi
if [[ -z "$sent" || "$sent" -lt "$msgs0" ]]; then
    echo "FAIL: sender SPC messages_sent=$sent < benchmark total $msgs0" >&2
    exit 1
fi
# The receiver also absorbs internal barrier traffic, so >= is the invariant.
if [[ -z "$received" || "$received" -lt "$sent" ]]; then
    echo "FAIL: receiver SPC messages_received=$received < sender messages_sent=$sent" >&2
    exit 1
fi
echo "OK: $msgs0 benchmark messages; sender sent=$sent, receiver received=$received"
