#!/usr/bin/env bash
# TCP smoke test, two stages.
#
# Stage 1 — two processes by hand: run the pairwise Multirate benchmark as
# two real OS processes joined over loopback TCP — with wire tracing on and
# the receiver serving its live observability endpoint — and check that:
#   - both halves finish with consistent totals (the sender's messages_sent
#     SPC fully accounted for by the receiver's messages_received),
#   - /healthz answers, /readyz flips to 200 once the handshake completes,
#     and /metrics + /debug/queues answer while the run is in flight,
#   - the per-rank trace shards merge into one Chrome trace with
#     cross-rank flow arrows.
#
# Stage 2 — four ranks through the launcher: run the same benchmark via
# `mpirun -n 4`, poll a rank's live /spc mid-run, and assert the
# multiplexed on-demand connection invariant from the counters: summed over
# ranks, conns_opened - dial_races_lost never exceeds one physical
# connection per communicating pair.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
go build -o "$tmp/multirate" ./cmd/multirate
go build -o "$tmp/tracemerge" ./cmd/tracemerge

port_base=$((20000 + RANDOM % 20000))
http_addr="127.0.0.1:$((port_base + 2))"
peers="127.0.0.1:${port_base},127.0.0.1:$((port_base + 1))"
args=(-transport tcp -peers "$peers" -pairs 4 -window 64 -iters 256 -machine fast -spcs -trace-wire -latency)

out0="$tmp/out0" out1="$tmp/out1"
"$tmp/multirate" -rank 1 "${args[@]}" -http "$http_addr" \
    -trace-shard "$tmp/shard1.json" >"$out1" 2>&1 &
recv_pid=$!

# Poll the receiver's live endpoint while the benchmark runs. The server
# binds before the world exists (liveness answers during the TCP
# handshake); /readyz turns 200 only once the world is constructed, at
# which point the introspection endpoints carry live queue state.
(
    for _ in $(seq 1 100); do
        if curl -fsS "http://$http_addr/healthz" >"$tmp/healthz" 2>/dev/null; then
            break
        fi
        sleep 0.1
    done
    [[ -s "$tmp/healthz" ]] || exit 1
    for _ in $(seq 1 100); do
        if curl -fsS "http://$http_addr/readyz" >"$tmp/readyz" 2>/dev/null; then
            curl -fsS "http://$http_addr/debug/queues" >"$tmp/queues" 2>/dev/null || true
            curl -fsS "http://$http_addr/metrics" >"$tmp/metrics" 2>/dev/null || true
            # Attribution fills as messages complete: keep polling
            # /debug/latency until the live dump carries stage histograms
            # (the post-run check asserts on what this captured).
            for _ in $(seq 1 100); do
                if curl -fsS "http://$http_addr/debug/latency" >"$tmp/latency_live" 2>/dev/null &&
                    grep -q '"stage"' "$tmp/latency_live"; then
                    break
                fi
                sleep 0.05
            done
            exit 0
        fi
        sleep 0.1
    done
    exit 1
) &
curl_pid=$!

"$tmp/multirate" -rank 0 "${args[@]}" -trace-shard "$tmp/shard0.json" >"$out0" 2>&1
wait "$recv_pid"

field() { grep -o "$2=[^ ]*" "$1" | head -1 | cut -d= -f2; }
counter() { awk -v k="$2" '$1 == k { print $2 }' "$1"; }

msgs0="$(field "$out0" messages)"
msgs1="$(field "$out1" messages)"
sent="$(counter "$out0" messages_sent)"
received="$(counter "$out1" messages_received)"

echo "rank 0: $(head -c 200 <(grep engine= "$out0"))"
echo "rank 1: $(head -c 200 <(grep engine= "$out1"))"

if [[ -z "$msgs0" || "$msgs0" != "$msgs1" ]]; then
    echo "FAIL: header message totals differ (rank0=$msgs0 rank1=$msgs1)" >&2
    exit 1
fi
if [[ -z "$sent" || "$sent" -lt "$msgs0" ]]; then
    echo "FAIL: sender SPC messages_sent=$sent < benchmark total $msgs0" >&2
    exit 1
fi
# The receiver also absorbs internal barrier traffic, so >= is the invariant.
if [[ -z "$received" || "$received" -lt "$sent" ]]; then
    echo "FAIL: receiver SPC messages_received=$received < sender messages_sent=$sent" >&2
    exit 1
fi

# The live endpoint must have answered during the run.
if ! wait "$curl_pid"; then
    echo "FAIL: /healthz or /readyz never answered during the run" >&2
    exit 1
fi
if ! grep -q '^ok$' "$tmp/healthz"; then
    echo "FAIL: /healthz body: $(cat "$tmp/healthz")" >&2
    exit 1
fi
if ! grep -q '^ready$' "$tmp/readyz"; then
    echo "FAIL: /readyz body: $(cat "$tmp/readyz")" >&2
    exit 1
fi
if ! grep -q 'mpi_build_info' "$tmp/metrics"; then
    echo "FAIL: /metrics served no mpi_build_info gauge" >&2
    exit 1
fi
# Mid-run introspection: the queue snapshot must be JSON naming the rank's
# communicator queues.
if ! grep -q '"rank"' "$tmp/queues" || ! grep -q '"comms"' "$tmp/queues"; then
    echo "FAIL: /debug/queues snapshot: $(head -c 200 "$tmp/queues")" >&2
    exit 1
fi
# Mid-run latency attribution: /debug/latency must have served non-empty
# per-stage histograms while messages were still completing.
if ! grep -q '"stage"' "$tmp/latency_live" || ! grep -q '"exemplars"' "$tmp/latency_live"; then
    echo "FAIL: mid-run /debug/latency had no stage histograms: $(head -c 200 "$tmp/latency_live" 2>/dev/null)" >&2
    exit 1
fi

# The per-rank shards must merge into one clock-corrected Chrome trace
# carrying cross-rank flow arrows.
"$tmp/tracemerge" -o "$tmp/merged.json" "$tmp/shard0.json" "$tmp/shard1.json"
flows="$(grep -o 'mpi-flow' "$tmp/merged.json" | wc -l)"
if [[ "$flows" -lt 3 ]]; then
    echo "FAIL: merged trace has no cross-rank flow arrows" >&2
    exit 1
fi

echo "OK: $msgs0 benchmark messages; sender sent=$sent, receiver received=$received"
echo "OK: live /healthz, /readyz, /metrics and /debug/queues served; merged trace carries $flows flow-arrow events"

# ---- 4-rank mpirun launch ---------------------------------------------
# Launch the same benchmark as a 4-rank job through the mpirun launcher,
# hit a rank's live /spc endpoint mid-run, and verify the multiplexed
# on-demand topology from the connection counters: the surviving physical
# connections (conns_opened - dial_races_lost, summed over ranks) must not
# exceed one per communicating pair — at most n(n-1)/2 = 6 for n=4.
go build -o "$tmp/mpirun" ./cmd/mpirun

mout="$tmp/mpirun_out"
"$tmp/mpirun" -n 4 "$tmp/multirate" -pairs 4 -window 64 -iters 128 \
    -machine fast -spcs -http 127.0.0.1:0 >"$mout" 2>&1 &
mpirun_pid=$!

# Each rank prints its auto-allocated observability address on stderr;
# grab the first one that appears in the teed output and poll its /spc
# while the job runs.
spc_live=""
for _ in $(seq 1 200); do
    addr="$(grep -o 'observability endpoint on http://[0-9.:]*' "$mout" 2>/dev/null | head -1 | sed 's#.*http://##' || true)"
    if [[ -n "$addr" ]] && curl -fsS "http://$addr/spc" >"$tmp/spc_live" 2>/dev/null; then
        spc_live=yes
        break
    fi
    kill -0 "$mpirun_pid" 2>/dev/null || break
    sleep 0.05
done

if ! wait "$mpirun_pid"; then
    echo "FAIL: mpirun -n 4 exited nonzero" >&2
    tail -20 "$mout" >&2
    exit 1
fi
if [[ "$(grep -c 'engine=real' "$mout")" -ne 4 ]]; then
    echo "FAIL: expected 4 rank headers from mpirun, got:" >&2
    grep 'engine=real' "$mout" >&2 || true
    exit 1
fi
if [[ -z "$spc_live" ]] || ! grep -q 'messages_' "$tmp/spc_live"; then
    echo "FAIL: live /spc endpoint never answered during the mpirun job" >&2
    exit 1
fi

# Per-rank counters arrive teed as "[rank R] counter_name value"; absent
# means zero (the SPC dump omits zero counters).
rank_counter() {
    local v
    v="$(awk -v r="$2]" -v k="$3" '$1 == "[rank" && $2 == r && $3 == k { print $4; exit }' "$1")"
    echo "${v:-0}"
}
opened_total=0 reused_total=0 races_total=0
for r in 0 1 2 3; do
    o="$(rank_counter "$mout" "$r" conns_opened)"
    u="$(rank_counter "$mout" "$r" conns_reused)"
    l="$(rank_counter "$mout" "$r" dial_races_lost)"
    echo "rank $r: conns_opened=$o conns_reused=$u dial_races_lost=$l"
    if [[ "$o" -gt 3 ]]; then
        echo "FAIL: rank $r opened $o connections, only 3 peers exist" >&2
        exit 1
    fi
    opened_total=$((opened_total + o))
    reused_total=$((reused_total + u))
    races_total=$((races_total + l))
done
surviving=$((opened_total - races_total))
if [[ "$surviving" -lt 3 || "$surviving" -gt 6 ]]; then
    echo "FAIL: $surviving surviving connections (opened=$opened_total races_lost=$races_total); a 4-rank job holds 3..6, at most one per pair" >&2
    exit 1
fi

echo "OK: mpirun -n 4 completed; $surviving surviving connections for 6 peer pairs (opened=$opened_total reused=$reused_total races_lost=$races_total); live /spc answered mid-run"

# ---- Cluster observability plane --------------------------------------
# Stage 3 — the launcher as the job's observability plane. A healthy run
# under `mpirun -http` must serve one rank-labeled series per rank on the
# aggregate /cluster/metrics with a clean /cluster/imbalance mid-run; a
# -stall run must localize the frozen rank in an imbalance verdict. The
# end-of-run cluster reports stay in the working tree as CI artifacts.
go build -o "$tmp/mpitop" ./cmd/mpitop

cport=$((port_base + 3))
cout="$tmp/cluster_out"
"$tmp/mpirun" -n 4 -http "127.0.0.1:$cport" -poll 100ms -report-out cluster_report.json \
    "$tmp/multirate" -pairs 4 -window 16 -iters 1500 -machine fast -latency >"$cout" 2>&1 &
cluster_pid=$!

# Wait until every rank's series shows up in the merged exposition — with
# the attribution layer on, that includes at least one non-empty
# (count > 0) latency stage histogram per rank (senders fill the
# sender-side stages, receivers the receive path; the recording-ownership
# rule means no rank fills both) — then assert the mid-run imbalance view
# is clean. Verdicts must come from rank pathology, not from scrape races
# or benign sender-ahead queue depth.
ranks_seen=""
for _ in $(seq 1 200); do
    if curl -fsS "http://127.0.0.1:$cport/cluster/metrics" >"$tmp/cluster_metrics" 2>/dev/null; then
        n=0
        for r in 0 1 2 3; do
            grep -q "mpi_uptime_seconds{rank=\"$r\"}" "$tmp/cluster_metrics" &&
                grep -Eq "mpi_latency_[a-z_0-9]*_bucket\{rank=\"$r\",le=\"\+Inf\"\} [1-9]" "$tmp/cluster_metrics" &&
                n=$((n + 1))
        done
        if [[ "$n" -eq 4 ]]; then
            ranks_seen=yes
            curl -fsS "http://127.0.0.1:$cport/cluster/imbalance" >"$tmp/cluster_imbalance" 2>/dev/null || true
            break
        fi
    fi
    kill -0 "$cluster_pid" 2>/dev/null || break
    sleep 0.05
done

if ! wait "$cluster_pid"; then
    echo "FAIL: mpirun -http job exited nonzero" >&2
    tail -20 "$cout" >&2
    exit 1
fi
if [[ -z "$ranks_seen" ]]; then
    echo "FAIL: /cluster/metrics never carried all 4 rank-labeled series" >&2
    head -40 "$tmp/cluster_metrics" >&2 || true
    exit 1
fi
for r in 0 1 2 3; do
    if ! grep -q "mpi_spc_messages_sent{rank=\"$r\",scope=\"process\"}" "$tmp/cluster_metrics"; then
        echo "FAIL: merged exposition has no messages_sent series for rank $r" >&2
        exit 1
    fi
done
# The recording-ownership rule, observed end-to-end over TCP: in this
# topology even ranks are pure senders (wire_write fills, e2e stays
# empty) and odd ranks are the receivers (e2e fills).
for r in 0 2; do
    if ! grep -Eq "mpi_latency_stage_wire_write_ns_bucket\{rank=\"$r\",le=\"\+Inf\"\} [1-9]" "$tmp/cluster_metrics"; then
        echo "FAIL: sender rank $r exported no wire_write stage histogram" >&2
        exit 1
    fi
done
for r in 1 3; do
    if ! grep -Eq "mpi_latency_e2e_ns_bucket\{rank=\"$r\",le=\"\+Inf\"\} [1-9]" "$tmp/cluster_metrics"; then
        echo "FAIL: receiver rank $r exported no e2e latency histogram" >&2
        exit 1
    fi
done
if ! grep -q '"clean": true' "$tmp/cluster_imbalance"; then
    echo "FAIL: healthy run's mid-run /cluster/imbalance not clean:" >&2
    cat "$tmp/cluster_imbalance" >&2
    exit 1
fi
if ! grep -q '"schema_version": 2' cluster_report.json; then
    echo "FAIL: cluster report missing or wrong schema:" >&2
    head -5 cluster_report.json >&2 || true
    exit 1
fi
# The saved report must render through mpitop's snapshot mode.
if ! "$tmp/mpitop" -snapshot cluster_report.json | grep -q 'RANK'; then
    echo "FAIL: mpitop -snapshot could not render the cluster report" >&2
    exit 1
fi
echo "OK: mpirun -http served 4 rank-labeled series with a clean mid-run imbalance view"

# Stall localization: freeze rank 3's receive side for 3s mid-run and
# require the cluster detector to name it. (The deterministic only-rank-3
# assertion lives in the simnet twin; this exercises the live pipeline.)
dport=$((port_base + 4))
sout="$tmp/stall_out"
if ! "$tmp/mpirun" -n 4 -http "127.0.0.1:$dport" -poll 100ms -report-out cluster_stall_report.json \
    "$tmp/multirate" -pairs 4 -window 64 -iters 1500 -machine fast -stall 3s -stall-at 2 >"$sout" 2>&1; then
    echo "FAIL: mpirun -stall job exited nonzero" >&2
    tail -20 "$sout" >&2
    exit 1
fi
if ! grep -q '"reason": "rank-straggler"' cluster_stall_report.json ||
    ! grep -q 'rank 3 made no send/recv progress' cluster_stall_report.json; then
    echo "FAIL: stalled run produced no straggler verdict naming rank 3:" >&2
    grep -A2 '"verdicts"' cluster_stall_report.json >&2 || true
    exit 1
fi
echo "OK: cluster detector localized the injected stall to rank 3 over tcp"
