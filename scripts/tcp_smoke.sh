#!/usr/bin/env bash
# Two-process TCP smoke test: run the pairwise Multirate benchmark as two
# real OS processes joined over loopback TCP — with wire tracing on and the
# receiver serving its live observability endpoint — and check that:
#   - both halves finish with consistent totals (the sender's messages_sent
#     SPC fully accounted for by the receiver's messages_received),
#   - /healthz answers, /readyz flips to 200 once the handshake completes,
#     and /metrics + /debug/queues answer while the run is in flight,
#   - the per-rank trace shards merge into one Chrome trace with
#     cross-rank flow arrows.
set -euo pipefail
cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
go build -o "$tmp/multirate" ./cmd/multirate
go build -o "$tmp/tracemerge" ./cmd/tracemerge

port_base=$((20000 + RANDOM % 20000))
http_addr="127.0.0.1:$((port_base + 2))"
peers="127.0.0.1:${port_base},127.0.0.1:$((port_base + 1))"
args=(-transport tcp -peers "$peers" -pairs 4 -window 64 -iters 256 -machine fast -spcs -trace-wire)

out0="$tmp/out0" out1="$tmp/out1"
"$tmp/multirate" -rank 1 "${args[@]}" -http "$http_addr" \
    -trace-shard "$tmp/shard1.json" >"$out1" 2>&1 &
recv_pid=$!

# Poll the receiver's live endpoint while the benchmark runs. The server
# binds before the world exists (liveness answers during the TCP
# handshake); /readyz turns 200 only once the world is constructed, at
# which point the introspection endpoints carry live queue state.
(
    for _ in $(seq 1 100); do
        if curl -fsS "http://$http_addr/healthz" >"$tmp/healthz" 2>/dev/null; then
            break
        fi
        sleep 0.1
    done
    [[ -s "$tmp/healthz" ]] || exit 1
    for _ in $(seq 1 100); do
        if curl -fsS "http://$http_addr/readyz" >"$tmp/readyz" 2>/dev/null; then
            curl -fsS "http://$http_addr/debug/queues" >"$tmp/queues" 2>/dev/null || true
            curl -fsS "http://$http_addr/metrics" >"$tmp/metrics" 2>/dev/null || true
            exit 0
        fi
        sleep 0.1
    done
    exit 1
) &
curl_pid=$!

"$tmp/multirate" -rank 0 "${args[@]}" -trace-shard "$tmp/shard0.json" >"$out0" 2>&1
wait "$recv_pid"

field() { grep -o "$2=[^ ]*" "$1" | head -1 | cut -d= -f2; }
counter() { awk -v k="$2" '$1 == k { print $2 }' "$1"; }

msgs0="$(field "$out0" messages)"
msgs1="$(field "$out1" messages)"
sent="$(counter "$out0" messages_sent)"
received="$(counter "$out1" messages_received)"

echo "rank 0: $(head -c 200 <(grep engine= "$out0"))"
echo "rank 1: $(head -c 200 <(grep engine= "$out1"))"

if [[ -z "$msgs0" || "$msgs0" != "$msgs1" ]]; then
    echo "FAIL: header message totals differ (rank0=$msgs0 rank1=$msgs1)" >&2
    exit 1
fi
if [[ -z "$sent" || "$sent" -lt "$msgs0" ]]; then
    echo "FAIL: sender SPC messages_sent=$sent < benchmark total $msgs0" >&2
    exit 1
fi
# The receiver also absorbs internal barrier traffic, so >= is the invariant.
if [[ -z "$received" || "$received" -lt "$sent" ]]; then
    echo "FAIL: receiver SPC messages_received=$received < sender messages_sent=$sent" >&2
    exit 1
fi

# The live endpoint must have answered during the run.
if ! wait "$curl_pid"; then
    echo "FAIL: /healthz or /readyz never answered during the run" >&2
    exit 1
fi
if ! grep -q '^ok$' "$tmp/healthz"; then
    echo "FAIL: /healthz body: $(cat "$tmp/healthz")" >&2
    exit 1
fi
if ! grep -q '^ready$' "$tmp/readyz"; then
    echo "FAIL: /readyz body: $(cat "$tmp/readyz")" >&2
    exit 1
fi
if ! grep -q 'mpi_build_info' "$tmp/metrics"; then
    echo "FAIL: /metrics served no mpi_build_info gauge" >&2
    exit 1
fi
# Mid-run introspection: the queue snapshot must be JSON naming the rank's
# communicator queues.
if ! grep -q '"rank"' "$tmp/queues" || ! grep -q '"comms"' "$tmp/queues"; then
    echo "FAIL: /debug/queues snapshot: $(head -c 200 "$tmp/queues")" >&2
    exit 1
fi

# The per-rank shards must merge into one clock-corrected Chrome trace
# carrying cross-rank flow arrows.
"$tmp/tracemerge" -o "$tmp/merged.json" "$tmp/shard0.json" "$tmp/shard1.json"
flows="$(grep -o 'mpi-flow' "$tmp/merged.json" | wc -l)"
if [[ "$flows" -lt 3 ]]; then
    echo "FAIL: merged trace has no cross-rank flow arrows" >&2
    exit 1
fi

echo "OK: $msgs0 benchmark messages; sender sent=$sent, receiver received=$received"
echo "OK: live /healthz, /readyz, /metrics and /debug/queues served; merged trace carries $flows flow-arrow events"
